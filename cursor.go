package lccs

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"lccs/internal/obs"
	"lccs/internal/pqueue"
)

// Cursor-paginated search. SearchCursor replaces one-shot top-k with
// direct access into the ranked result stream: each call returns the
// next `limit` results and an opaque continuation token. The token
// records, per result source (one per shard, plus the delta buffer on a
// DynamicIndex), how many results earlier pages consumed, together with
// a write-generation guard and a hash binding it to the query, filter,
// and budget it was minted for. Resuming re-fetches each source's top
// (consumed + limit) ranked stream, skips the consumed prefix, and
// merges by (distance, id) — the same deterministic order the one-shot
// tournament merge uses — so draining a cursor to exhaustion yields
// exactly the one-shot top-n ordering. Any write (insert, delete,
// compaction, background shard swap, rebuild) bumps the generation and
// invalidates outstanding tokens; immutable facades never invalidate.
//
// Ranking inside each source is budget-bound like any LCCS query: with
// an exhaustive budget (λ ≥ n) pagination is exact; under smaller
// budgets the per-source streams are the usual approximate rankings.
// Crucially the number of candidates each source verifies is pinned to
// the token's λ rather than the usual λ+k−1: the fetch size k grows
// with every page, and letting it widen the verified set would let a
// newly discovered candidate slide in ahead of the consumed prefix —
// duplicating one result and silently dropping another. With the
// candidate count fixed, a source's ranked stream is a deterministic
// function of (query, filter, λ) alone and deeper fetches only extend
// it.

// cursorFetch pins a source's verification work to exactly lambda
// candidates: the fetch size is capped at lambda (a λ-candidate stream
// cannot rank more than λ results) and the budget passed down
// compensates so nCand = λ' + k − 1 = λ on every page.
func cursorFetch(requested, lambda int) (kFetch, lambdaEff int) {
	kFetch = requested
	if kFetch > lambda {
		kFetch = lambda
	}
	return kFetch, lambda - kFetch + 1
}

// ErrCursorInvalid is returned for a malformed cursor token or one
// minted for a different query, filter, budget, or backend shape.
var ErrCursorInvalid = errors.New("lccs: invalid cursor token")

// ErrCursorStale is returned when the index was written to after the
// token was minted. It wraps ErrCursorInvalid.
var ErrCursorStale = fmt.Errorf("%w: invalidated by writes", ErrCursorInvalid)

// CursorSearcher is implemented by every facade: resumable ranked
// search. limit is the page size; lambda the candidate budget (≤ 0
// selects the default, ignored on resume — the token carries the
// original); f may be nil. An empty cursor starts a new scan. The
// returned next token is empty once the result stream is exhausted.
type CursorSearcher interface {
	SearchCursor(q []float32, limit, lambda int, f *Filter, cursor string) (page []Neighbor, next string, err error)
}

// Compile-time conformance of the facades (DurableIndex inherits from
// DynamicIndex).
var (
	_ CursorSearcher = (*Index)(nil)
	_ CursorSearcher = (*ShardedIndex)(nil)
	_ CursorSearcher = (*DynamicIndex)(nil)
)

// cursorToken is the decoded continuation state.
type cursorToken struct {
	gen    uint64 // backend write generation at mint time
	lambda int    // candidate budget the scan was started with
	hash   uint64 // binds the token to (query, filter)
	offs   []int  // per-source results consumed by earlier pages
}

const cursorVersion = 1

// cursorMaxSources bounds decoded source counts (corrupt tokens must
// not drive allocations).
const cursorMaxSources = 1 << 16

// encodeCursor serializes a token: URL-safe base64 over a versioned
// varint encoding.
func encodeCursor(t cursorToken) string {
	buf := make([]byte, 0, 16+10*len(t.offs))
	buf = append(buf, cursorVersion)
	buf = binary.AppendUvarint(buf, t.gen)
	buf = binary.AppendUvarint(buf, uint64(t.lambda))
	buf = binary.LittleEndian.AppendUint64(buf, t.hash)
	buf = binary.AppendUvarint(buf, uint64(len(t.offs)))
	for _, off := range t.offs {
		buf = binary.AppendUvarint(buf, uint64(off))
	}
	return base64.RawURLEncoding.EncodeToString(buf)
}

// decodeCursor parses a token; every failure is ErrCursorInvalid.
func decodeCursor(s string) (cursorToken, error) {
	var t cursorToken
	buf, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || len(buf) < 2 || buf[0] != cursorVersion {
		return t, ErrCursorInvalid
	}
	rest := buf[1:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	gen, ok := next()
	if !ok {
		return t, ErrCursorInvalid
	}
	lambda, ok := next()
	if !ok || lambda == 0 || lambda > math.MaxInt32 {
		return t, ErrCursorInvalid
	}
	if len(rest) < 8 {
		return t, ErrCursorInvalid
	}
	t.hash = binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	nsrc, ok := next()
	if !ok || nsrc == 0 || nsrc > cursorMaxSources {
		return t, ErrCursorInvalid
	}
	t.gen, t.lambda = gen, int(lambda)
	t.offs = make([]int, nsrc)
	for i := range t.offs {
		off, ok := next()
		if !ok || off > math.MaxInt32 {
			return t, ErrCursorInvalid
		}
		t.offs[i] = int(off)
	}
	if len(rest) != 0 {
		return t, ErrCursorInvalid
	}
	return t, nil
}

// cursorHash binds a token to the query and filter it was minted for.
func cursorHash(q []float32, f *Filter) uint64 {
	h := fnv.New64a()
	var word [4]byte
	for _, v := range q {
		binary.LittleEndian.PutUint32(word[:], math.Float32bits(v))
		h.Write(word[:])
	}
	h.Write(f.AppendKey(nil))
	return h.Sum64()
}

// cursorResume validates a continuation token against the current
// backend state and returns it; an empty cursor mints a fresh token.
func cursorResume(cursor string, q []float32, lambda int, f *Filter, gen uint64, nsrc int) (cursorToken, error) {
	if cursor == "" {
		return cursorToken{gen: gen, lambda: lambda, hash: cursorHash(q, f), offs: make([]int, nsrc)}, nil
	}
	t, err := decodeCursor(cursor)
	if err != nil {
		return t, err
	}
	if t.hash != cursorHash(q, f) {
		return t, fmt.Errorf("%w: token belongs to a different query", ErrCursorInvalid)
	}
	if t.gen != gen || len(t.offs) != nsrc {
		return t, ErrCursorStale
	}
	return t, nil
}

// validateCursorQuery applies the page-size and query contract shared
// by every SearchCursor implementation.
func validateCursorQuery(q []float32, dim, limit, lambda int) error {
	if limit <= 0 {
		return ErrInvalidK
	}
	return validateQuery(q, dim, limit, lambda)
}

// mergeCursorPage pops up to limit results from the per-source sorted
// lists, starting at pos t.offs[i] in list i, advancing offsets in
// place. It merges by (Dist, ID) — identical to the tournament's
// tie-break — and reports whether every source is fully drained.
// requested[i] is how many results source i was asked for: a list
// shorter than its request has no more to give; a list that merely ran
// out of fetched entries cannot (and, because pos[i] never exceeds
// offs[i]+limit ≤ requested[i], does not) truncate the page.
func mergeCursorPage(lists [][]pqueue.Neighbor, requested []int, t *cursorToken, limit int, emit func(pqueue.Neighbor)) (exhausted bool) {
	pos := t.offs
	for i := range pos {
		if pos[i] > len(lists[i]) {
			pos[i] = len(lists[i])
		}
	}
	for emitted := 0; emitted < limit; emitted++ {
		bestSrc := -1
		var best pqueue.Neighbor
		for i, list := range lists {
			if pos[i] >= len(list) {
				continue
			}
			nb := list[pos[i]]
			if bestSrc < 0 || nb.Dist < best.Dist || (nb.Dist == best.Dist && nb.ID < best.ID) {
				bestSrc, best = i, nb
			}
		}
		if bestSrc < 0 {
			break
		}
		pos[bestSrc]++
		emit(best)
	}
	exhausted = true
	for i, list := range lists {
		// Unconsumed fetched results remain, or the source returned its
		// full request (it may hold more beyond what was fetched).
		if pos[i] < len(list) || len(list) >= requested[i] {
			exhausted = false
			break
		}
	}
	return exhausted
}

// SearchCursor pages through the ranked results of a (optionally
// filtered) scan of a static Index. See CursorSearcher.
func (ix *Index) SearchCursor(q []float32, limit, lambda int, f *Filter, cursor string) ([]Neighbor, string, error) {
	if lambda <= 0 {
		lambda = ix.budget
	}
	if err := validateCursorQuery(q, ix.dim, limit, lambda); err != nil {
		return nil, "", err
	}
	if err := validateFilter(f); err != nil {
		return nil, "", err
	}
	start := time.Now()
	t, err := cursorResume(cursor, q, lambda, f, 0, 1)
	if err != nil {
		return nil, "", err
	}
	if cursor != "" {
		lambda = t.lambda
		defer func() { obs.ObserveDur(obs.StageCursorResume, time.Since(start)) }()
	}
	need := t.offs[0] + limit
	attrs := ix.attrs
	accept := func(id int) bool { return f.Matches(attrs.Row(id)) }
	if f.Empty() {
		accept = nil
	}
	rb := ix.getRaw()
	var list []pqueue.Neighbor
	kFetch, lamEff := cursorFetch(need, lambda)
	if ix.multi != nil {
		rb.buf, _ = ix.multi.SearchFilterOffsetIntoStats(q, kFetch, lamEff, 0, accept, rb.buf[:0])
	} else {
		rb.buf, _ = ix.single.SearchFilterOffsetIntoStats(q, kFetch, lamEff, 0, accept, rb.buf[:0])
	}
	list = rb.buf
	page := make([]Neighbor, 0, limit)
	exhausted := mergeCursorPage([][]pqueue.Neighbor{list}, []int{need}, &t, limit, func(nb pqueue.Neighbor) {
		page = append(page, Neighbor{ID: nb.ID, Dist: nb.Dist})
	})
	ix.raw.Put(rb)
	next := ""
	if !exhausted {
		next = encodeCursor(t)
	}
	return page, next, nil
}

// SearchCursor pages through the ranked, merged results of a sharded
// scan. See CursorSearcher.
func (sx *ShardedIndex) SearchCursor(q []float32, limit, lambda int, f *Filter, cursor string) ([]Neighbor, string, error) {
	if lambda <= 0 {
		lambda = sx.budget
	}
	if err := validateCursorQuery(q, sx.dim, limit, lambda); err != nil {
		return nil, "", err
	}
	if err := validateFilter(f); err != nil {
		return nil, "", err
	}
	start := time.Now()
	s := len(sx.shards)
	t, err := cursorResume(cursor, q, lambda, f, 0, s)
	if err != nil {
		return nil, "", err
	}
	if cursor != "" {
		lambda = t.lambda
		defer func() { obs.ObserveDur(obs.StageCursorResume, time.Since(start)) }()
	}
	lambdaShard := (lambda + s - 1) / s
	lists := make([][]pqueue.Neighbor, s)
	requested := make([]int, s)
	for i, shard := range sx.shards {
		off := sx.offsets[i]
		requested[i] = t.offs[i] + limit
		accept := sx.acceptFunc(f, off)
		kFetch, lamEff := cursorFetch(requested[i], lambdaShard)
		lists[i], _ = shard.searchFilterOffsetIntoStats(q, kFetch, lamEff, off, accept, nil)
	}
	page := make([]Neighbor, 0, limit)
	exhausted := mergeCursorPage(lists, requested, &t, limit, func(nb pqueue.Neighbor) {
		page = append(page, Neighbor{ID: sx.ids.Ext(nb.ID), Dist: nb.Dist})
	})
	next := ""
	if !exhausted {
		next = encodeCursor(t)
	}
	return page, next, nil
}

// SearchCursor pages through the ranked results of a dynamic scan:
// sources are the immutable shards plus the delta buffer. Tokens are
// invalidated by any write. See CursorSearcher.
func (d *DynamicIndex) SearchCursor(q []float32, limit, lambda int, f *Filter, cursor string) ([]Neighbor, string, error) {
	if lambda <= 0 {
		lambda = d.defaultBudget()
	}
	if err := validateFilter(f); err != nil {
		return nil, "", err
	}
	start := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := validateCursorQuery(q, d.store.Dim(), limit, lambda); err != nil {
		return nil, "", err
	}
	nsrc := len(d.shards) + 1 // + the delta buffer
	t, err := cursorResume(cursor, q, lambda, f, d.writes, nsrc)
	if err != nil {
		return nil, "", err
	}
	if cursor != "" {
		lambda = t.lambda
		defer func() { obs.ObserveDur(obs.StageCursorResume, time.Since(start)) }()
	}
	// Each shard source gets the full budget rather than a ⌈λ/S⌉ split:
	// dynamic shards are uneven (each background build freezes whatever
	// the buffer held), so a split budget could under-verify the largest
	// shard and break the λ ≥ n exactness guarantee.
	lists := make([][]pqueue.Neighbor, nsrc)
	requested := make([]int, nsrc)
	for i, sh := range d.shards {
		requested[i] = t.offs[i] + limit
		kFetch, lamEff := cursorFetch(requested[i], lambda)
		lists[i], _ = sh.ix.searchFilterOffsetIntoStats(q, kFetch, lamEff, sh.off, d.acceptLocked(f, sh.off), nil)
	}
	// The delta buffer is one exact-scan source: collect its top
	// (consumed + limit) eligible rows. It is always fully enumerated,
	// so "requested" never truncates it.
	bi := nsrc - 1
	requested[bi] = t.offs[bi] + limit
	if d.store.Len() > d.indexed {
		var best pqueue.KBest
		best.Reset(requested[bi])
		d.store.Scan(d.indexed, d.store.Len(), q, d.metricLocked(), func(slot int, dist float64) {
			if !d.deleted[slot] && f.Matches(d.attrs.Row(slot)) {
				best.Add(slot, dist)
			}
		})
		lists[bi] = best.AppendSorted(nil)
	}
	page := make([]Neighbor, 0, limit)
	exhausted := mergeCursorPage(lists, requested, &t, limit, func(nb pqueue.Neighbor) {
		page = append(page, Neighbor{ID: d.ids.Ext(nb.ID), Dist: nb.Dist})
	})
	next := ""
	if !exhausted {
		next = encodeCursor(t)
	}
	return page, next, nil
}
