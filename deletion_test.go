package lccs

import (
	"path/filepath"
	"sync"
	"testing"

	"lccs/internal/rng"
)

// TestDynamicDeleteReturnsLiveness pins the Delete contract: true for a
// live id, false for unknown, already-deleted, and compacted-away ids.
func TestDynamicDeleteReturnsLiveness(t *testing.T) {
	data, _ := testData(61, 100, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 11}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delete(42) {
		t.Fatal("deleting a live id should return true")
	}
	if d.Delete(42) {
		t.Fatal("double delete should return false")
	}
	if d.Delete(-1) || d.Delete(100000) {
		t.Fatal("deleting unknown ids should return false")
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Delete(42) {
		t.Fatal("deleting a compacted-away id should return false")
	}
	if d.Len() != 99 || d.Deleted() != 0 {
		t.Fatalf("Len=%d Deleted=%d", d.Len(), d.Deleted())
	}
}

// TestSnapshotExcludesDeletedRoundTrip is the resurrection regression:
// ids deleted before a snapshot must not appear in the snapshot's own
// results, in results after a save/load round trip, or in a warm
// dynamic index wrapped around the loaded snapshot — across deletes
// landing in the main shards AND the insert buffer.
func TestSnapshotExcludesDeletedRoundTrip(t *testing.T) {
	data, g := testData(62, 300, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 12}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Two buffered inserts; delete one of them plus two shard-resident
	// ids. Keep copies of the deleted vectors — their rows may be
	// reclaimed.
	bufKeep, err := d.Add(g.GaussianVector(8))
	if err != nil {
		t.Fatal(err)
	}
	bufDead, err := d.Add(g.GaussianVector(8))
	if err != nil {
		t.Fatal(err)
	}
	deadVecs := map[int][]float32{
		7:       append([]float32(nil), data[7]...),
		250:     append([]float32(nil), data[250]...),
		bufDead: append([]float32(nil), d.Vector(bufDead)...),
	}
	for id := range deadVecs {
		if !d.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}

	vectors, sx, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The buffered tombstone was compacted away entirely; the shard
	// tombstones remain as filtered rows.
	if got := len(vectors); got != 301 {
		t.Fatalf("snapshot rows = %d, want 301", got)
	}
	if sx.Len() != 299 || sx.Deleted() != 2 {
		t.Fatalf("snapshot Len=%d Deleted=%d, want 299/2", sx.Len(), sx.Deleted())
	}

	path := filepath.Join(t.TempDir(), "snap.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(path, vectors)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewDynamicIndexFromSharded(loaded, vectors, 10000)
	if err != nil {
		t.Fatal(err)
	}

	exhaustive := 4 * len(vectors)
	searchers := map[string]Searcher{"snapshot": sx, "loaded": loaded, "warm": warm}
	for name, s := range searchers {
		if s.Len() != 299 {
			t.Fatalf("%s: Len=%d, want 299", name, s.Len())
		}
		for id, v := range deadVecs {
			res := must(s.SearchBudget(v, 5, exhaustive))
			if len(res) == 0 {
				t.Fatalf("%s: no results at all", name)
			}
			for _, nb := range res {
				if nb.ID == id {
					t.Fatalf("%s: deleted id %d resurrected", name, id)
				}
			}
		}
		// Live ids — including the surviving buffered insert, whose slot
		// shifted during buffer compaction — answer under their stable
		// external id.
		for _, id := range []int{0, 150, bufKeep} {
			res := must(s.SearchBudget(vectors[mustSlot(t, loaded, id)], 1, exhaustive))
			if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
				t.Fatalf("%s: live id %d not served: %+v", name, id, res)
			}
		}
	}

	// The warm restart keeps the tombstones dead through a second
	// save/load generation and never reuses a deleted id for new adds.
	newID, err := warm.Add(g.GaussianVector(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, isDead := deadVecs[newID]; isDead || newID <= bufDead {
		t.Fatalf("new id %d reuses a dead or old id (watermark broken)", newID)
	}
	vectors2, snap2, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "snap2.lccs")
	if err := snap2.Save(path2); err != nil {
		t.Fatal(err)
	}
	loaded2, err := LoadSharded(path2, vectors2)
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range deadVecs {
		for _, nb := range must(loaded2.SearchBudget(v, 5, exhaustive)) {
			if nb.ID == id {
				t.Fatalf("deleted id %d resurrected in second generation", id)
			}
		}
	}
}

// mustSlot maps an external id to its row position in the snapshot's
// vector slice via the loaded index's id map (identity when no
// compaction happened).
func mustSlot(t *testing.T, sx *ShardedIndex, id int) int {
	t.Helper()
	if sx.ids == nil {
		return id
	}
	slot, ok := sx.ids.Slot(id)
	if !ok {
		t.Fatalf("id %d has no slot", id)
	}
	return slot
}

// TestRebuildReclaimsMemory pins the churn-leak regression: repeated
// delete+Rebuild cycles must hold the store flat instead of
// accumulating dead rows and tombstones forever.
func TestRebuildReclaimsMemory(t *testing.T) {
	data, g := testData(63, 400, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 13}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	baseRows := d.store.Len()
	baseBytes := d.store.Bytes()
	for cycle := 0; cycle < 5; cycle++ {
		var ids []int
		for i := 0; i < 100; i++ {
			id, err := d.Add(g.GaussianVector(8))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if !d.Delete(id) {
				t.Fatalf("cycle %d: delete %d failed", cycle, id)
			}
		}
		if err := d.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if d.store.Len() != baseRows || d.store.Bytes() != baseBytes {
			t.Fatalf("cycle %d: store grew to %d rows / %d bytes (base %d / %d)",
				cycle, d.store.Len(), d.store.Bytes(), baseRows, baseBytes)
		}
		if d.Len() != baseRows || d.Deleted() != 0 || d.Buffered() != 0 {
			t.Fatalf("cycle %d: Len=%d Deleted=%d Buffered=%d", cycle, d.Len(), d.Deleted(), d.Buffered())
		}
	}
	// The original vectors still answer under their original ids.
	res := must(d.Search(data[123], 1))
	if len(res) != 1 || res[0].ID != 123 || res[0].Dist != 0 {
		t.Fatalf("id 123 lost across compaction cycles: %+v", res)
	}
}

// TestDeltaBuildCompactsBufferedTombstones: vectors deleted while still
// in the insert buffer are dropped by the background delta build — no
// index work spent on them, no tombstone carried forward.
func TestDeltaBuildCompactsBufferedTombstones(t *testing.T) {
	data, g := testData(64, 100, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 14}, 40)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 39; i++ { // one under the threshold
		id, err := d.Add(g.GaussianVector(8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:20] {
		d.Delete(id)
	}
	// Crossing the threshold compacts the 20 dead buffered rows away —
	// and the remaining buffer (19 live + 1 new) stays under the
	// threshold, so no shard build runs at all.
	if _, err := d.Add(g.GaussianVector(8)); err != nil {
		t.Fatal(err)
	}
	d.WaitRebuild()
	if d.Shards() != 1 {
		t.Fatalf("Shards=%d: compaction should have kept the buffer under the threshold", d.Shards())
	}
	if d.Deleted() != 0 {
		t.Fatalf("Deleted=%d, buffered tombstones not reclaimed", d.Deleted())
	}
	if d.Len() != 120 || d.Buffered() != 20 {
		t.Fatalf("Len=%d Buffered=%d, want 120/20", d.Len(), d.Buffered())
	}
	// Enough further adds cross the threshold for real; the delta shard
	// then covers the compacted slots and ids still resolve.
	for i := 0; i < 40; i++ {
		if _, err := d.Add(g.GaussianVector(8)); err != nil {
			t.Fatal(err)
		}
	}
	d.WaitRebuild()
	if d.Shards() < 2 {
		t.Fatalf("Shards=%d, delta build never ran", d.Shards())
	}
	live := ids[25]
	res := must(d.Search(d.Vector(live), 1))
	if len(res) != 1 || res[0].ID != live || res[0].Dist != 0 {
		t.Fatalf("live id %d lost after buffer compaction: %+v", live, res)
	}
	for _, id := range ids[:20] {
		if d.Vector(id) != nil {
			t.Fatalf("dead buffered id %d still holds a row", id)
		}
	}
}

// TestOverfetchClampYieldsLiveResults: with most of a shard
// tombstoned, the per-shard fetch is clamped to the shard size yet k
// live results still come back.
func TestOverfetchClampYieldsLiveResults(t *testing.T) {
	data, _ := testData(65, 200, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 15}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Tombstone 90% of the single main shard.
	for id := 0; id < 180; id++ {
		if !d.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	const k = 10
	res := must(d.SearchBudget(data[190], k, 3*len(data)))
	if len(res) != k {
		t.Fatalf("got %d results, want %d live", len(res), k)
	}
	for _, nb := range res {
		if nb.ID < 180 {
			t.Fatalf("tombstoned id %d surfaced", nb.ID)
		}
	}
	// More live results than exist: all 20 survivors, nothing else.
	res = must(d.SearchBudget(data[190], 50, 3*len(data)))
	if len(res) != 20 {
		t.Fatalf("got %d results, want the 20 live vectors", len(res))
	}
}

// TestDeleteEverythingThenRebuild: the degenerate end of the lifecycle —
// an index whose every vector was deleted compacts to empty and stays
// usable.
func TestDeleteEverythingThenRebuild(t *testing.T) {
	data, g := testData(66, 50, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 16}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 50; id++ {
		d.Delete(id)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.Deleted() != 0 || d.Shards() != 0 {
		t.Fatalf("Len=%d Deleted=%d Shards=%d", d.Len(), d.Deleted(), d.Shards())
	}
	if res := must(d.Search(data[0], 3)); res != nil {
		t.Fatalf("empty index returned %+v", res)
	}
	// Still writable; new ids continue past the watermark.
	id, err := d.Add(g.GaussianVector(8))
	if err != nil {
		t.Fatal(err)
	}
	if id != 50 {
		t.Fatalf("post-wipe id = %d, want 50", id)
	}
	res := must(d.Search(d.Vector(id), 1))
	if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("post-wipe insert not served: %+v", res)
	}
}

// TestDynamicHammerWithCompaction drives concurrent Add/Delete/Search
// against periodic synchronous Rebuild compactions — the full mutation
// lifecycle under -race. Ids must stay stable and deleted ids must
// never surface, no matter how slots shift underneath.
func TestDynamicHammerWithCompaction(t *testing.T) {
	const (
		writers   = 4
		perWriter = 50
		initial   = 120
		threshold = 30
	)
	data, _ := testData(67, initial, 8, 4, 0.5)
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 22}, threshold)
	if err != nil {
		t.Fatal(err)
	}

	type owned struct {
		id  int
		vec []float32
	}
	addedBy := make([][]owned, writers)
	deletedBy := make([][]owned, writers)
	var writerWG, compactorWG sync.WaitGroup
	stop := make(chan struct{})
	// Compactor: explicit Rebuilds race the writers and searchers.
	compactorWG.Add(1)
	go func() {
		defer compactorWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				if err := d.Rebuild(); err != nil {
					t.Errorf("rebuild: %v", err)
					return
				}
				continue
			}
			// Snapshots race the background delta builds too: a snapshot
			// whose buffer compaction shifts slots must invalidate any
			// in-flight build rather than let it swap in stale offsets.
			if _, _, err := d.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			g := rng.New(uint64(2000 + w))
			for i := 0; i < perWriter; i++ {
				v := g.GaussianVector(8)
				id, err := d.Add(v)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				addedBy[w] = append(addedBy[w], owned{id: id, vec: v})
				if i%5 == 4 {
					mine := addedBy[w]
					victim := mine[g.IntN(len(mine))]
					if d.Delete(victim.id) {
						deletedBy[w] = append(deletedBy[w], victim)
					}
				}
				if i%7 == 0 {
					if _, err := d.Search(v, 3); err != nil {
						t.Errorf("writer %d search: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	compactorWG.Wait()
	d.WaitRebuild()

	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	dead := make(map[int]bool)
	total, nDeleted := initial, 0
	for w := 0; w < writers; w++ {
		total += len(addedBy[w])
		for _, o := range deletedBy[w] {
			if !dead[o.id] {
				dead[o.id] = true
				nDeleted++
			}
		}
	}
	if d.Len() != total-nDeleted {
		t.Fatalf("Len=%d, want %d", d.Len(), total-nDeleted)
	}
	if d.Deleted() != 0 {
		t.Fatalf("Deleted=%d after final Rebuild", d.Deleted())
	}
	for w := 0; w < writers; w++ {
		for _, o := range addedBy[w] {
			if dead[o.id] {
				continue
			}
			res := must(d.Search(o.vec, 1))
			if len(res) != 1 || res[0].ID != o.id || res[0].Dist != 0 {
				t.Fatalf("live id %d lost under compaction churn: %+v", o.id, res)
			}
		}
		for _, o := range deletedBy[w] {
			for _, nb := range must(d.Search(o.vec, 5)) {
				if nb.ID == o.id {
					t.Fatalf("deleted id %d surfaced under compaction churn", o.id)
				}
			}
		}
	}
}
