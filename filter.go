package lccs

import (
	"errors"
	"fmt"

	"lccs/internal/vec"
)

// Attrs is the optional typed metadata attached to one vector: a small
// key → value map with int64 and string values. A nil Attrs means "no
// metadata"; vectors without metadata cost nothing.
type Attrs = vec.Attrs

// AttrValue is one typed metadata value (int64 or string).
type AttrValue = vec.AttrValue

// IntAttr wraps an int64 as an attribute value.
func IntAttr(v int64) AttrValue { return vec.IntValue(v) }

// StrAttr wraps a string as an attribute value.
func StrAttr(s string) AttrValue { return vec.StrValue(s) }

// Filter is a conjunction (AND) of predicates over vector attributes:
// equality on int64 or string values, and inclusive numeric ranges. A
// nil or empty filter matches every vector. Filters are pushed into the
// candidate-verification loop: candidates failing the predicate are
// discarded before any distance computation and do not consume the
// verification budget, so the CSA stream keeps draining until enough
// matching candidates are verified — with an exhaustive budget the
// result is exactly the brute-force answer over matching live vectors.
type Filter = vec.Filter

// FilterTerm is one predicate of a Filter.
type FilterTerm = vec.FilterTerm

// FilterOp is the comparison a filter term applies.
type FilterOp = vec.FilterOp

// Filter term operators.
const (
	// FilterEq matches rows whose attribute equals the term's value.
	FilterEq = vec.FilterEq
	// FilterRange matches rows whose int64 attribute lies in the
	// inclusive [Min, Max] interval.
	FilterRange = vec.FilterRange
)

// EqInt builds an int64 equality term.
func EqInt(key string, v int64) FilterTerm {
	return FilterTerm{Key: key, Op: FilterEq, Value: vec.IntValue(v)}
}

// EqStr builds a string equality term.
func EqStr(key string, s string) FilterTerm {
	return FilterTerm{Key: key, Op: FilterEq, Value: vec.StrValue(s)}
}

// Range builds an inclusive int64 range term; nil bounds are open.
func Range(key string, min, max *int64) FilterTerm {
	t := FilterTerm{Key: key, Op: FilterRange}
	if min != nil {
		t.Min, t.HasMin = *min, true
	}
	if max != nil {
		t.Max, t.HasMax = *max, true
	}
	return t
}

// ErrInvalidFilter is returned (wrapped) when a filter is malformed.
var ErrInvalidFilter = errors.New("lccs: invalid filter")

// ErrAttrsMismatch is returned when a constructor receives an attribute
// slice whose length does not match the data.
var ErrAttrsMismatch = errors.New("lccs: attrs length does not match vectors")

// validateFilter translates filter validation failures into the
// package's typed error.
func validateFilter(f *Filter) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidFilter, err)
	}
	return nil
}

// FilterSearcher is implemented by every facade: filtered top-k search.
// A nil or empty filter degenerates to the plain search.
type FilterSearcher interface {
	// SearchFilter returns the k nearest neighbors among vectors
	// matching f, under the facade's default candidate budget.
	SearchFilter(q []float32, k int, f *Filter) ([]Neighbor, error)
	// SearchFilterBudgetInto is SearchFilter with an explicit candidate
	// budget λ, appending into dst (reset to dst[:0] first).
	SearchFilterBudgetInto(q []float32, k, lambda int, f *Filter, dst []Neighbor) ([]Neighbor, error)
}

// Compile-time conformance of the facades (DurableIndex inherits from
// DynamicIndex).
var (
	_ FilterSearcher = (*Index)(nil)
	_ FilterSearcher = (*ShardedIndex)(nil)
	_ FilterSearcher = (*DynamicIndex)(nil)
)

// Attrs returns the metadata of the vector with the given id, or nil.
func (ix *Index) Attrs(id int) Attrs { return ix.attrs.Row(id) }

// NewIndexWithAttrs is NewIndex with per-vector metadata: attrs[i]
// belongs to data[i]. attrs may be shorter than data (missing rows have
// no metadata) but not longer.
func NewIndexWithAttrs(data [][]float32, attrs []Attrs, cfg Config) (*Index, error) {
	if len(attrs) > len(data) {
		return nil, ErrAttrsMismatch
	}
	ix, err := NewIndex(data, cfg)
	if err != nil {
		return nil, err
	}
	if len(attrs) > 0 {
		ix.attrs = vec.MetaFromRows(append([]Attrs(nil), attrs...))
	}
	return ix, nil
}

// SearchFilter returns the k nearest neighbors among vectors matching f
// under the default candidate budget.
func (ix *Index) SearchFilter(q []float32, k int, f *Filter) ([]Neighbor, error) {
	return ix.SearchFilterBudgetInto(q, k, ix.budget, f, nil)
}

// SearchFilterBudgetInto is SearchFilter with an explicit budget λ,
// appending into dst. A vector with no metadata matches only the empty
// filter.
func (ix *Index) SearchFilterBudgetInto(q []float32, k, lambda int, f *Filter, dst []Neighbor) ([]Neighbor, error) {
	if f.Empty() {
		return ix.SearchBudgetInto(q, k, lambda, dst)
	}
	if err := validateFilter(f); err != nil {
		return nil, err
	}
	if err := validateQuery(q, ix.dim, k, lambda); err != nil {
		return nil, err
	}
	attrs := ix.attrs
	accept := func(id int) bool { return f.Matches(attrs.Row(id)) }
	rb := ix.getRaw()
	if ix.multi != nil {
		rb.buf, _ = ix.multi.SearchFilterOffsetIntoStats(q, k, lambda, 0, accept, rb.buf[:0])
	} else {
		rb.buf, _ = ix.single.SearchFilterOffsetIntoStats(q, k, lambda, 0, accept, rb.buf[:0])
	}
	if dst == nil {
		dst = make([]Neighbor, 0, len(rb.buf))
	}
	dst = appendNeighbors(dst[:0], rb.buf)
	ix.raw.Put(rb)
	return dst, nil
}
