package lccs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// sortedIDSet extracts result ids as a set for top-k set comparisons.
func sortedIDSet(res []Neighbor) map[int]bool {
	set := make(map[int]bool, len(res))
	for _, nb := range res {
		set[nb.ID] = true
	}
	return set
}

func TestShardedMatchesSingleIndexTopK(t *testing.T) {
	// At an exhaustive candidate budget both a single Index and a
	// ShardedIndex verify every vector, so the top-k sets must coincide
	// exactly (and match brute force) — the sharding changes the
	// partitioning, never the answer.
	data, g := testData(71, 1200, 10, 6, 0.5)
	cfg := Config{Metric: Euclidean, M: 24, Seed: 9}
	single, err := NewIndex(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 4, 7} {
		sx, err := NewShardedIndex(data, cfg, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if sx.Shards() != shards {
			t.Fatalf("got %d shards, want %d", sx.Shards(), shards)
		}
		exhaustive := shards * len(data)
		for qi := 0; qi < 15; qi++ {
			q := g.GaussianVector(10)
			a := must(single.SearchBudget(q, 10, len(data)))
			b := must(sx.SearchBudget(q, 10, exhaustive))
			if len(a) != len(b) {
				t.Fatalf("shards=%d query %d: %d vs %d results", shards, qi, len(a), len(b))
			}
			want, got := sortedIDSet(a), sortedIDSet(b)
			for id := range want {
				if !got[id] {
					t.Fatalf("shards=%d query %d: id %d missing from sharded top-k", shards, qi, id)
				}
			}
			// Distances agree pointwise (both ascending).
			for i := range a {
				if a[i].Dist != b[i].Dist {
					t.Fatalf("shards=%d query %d pos %d: dist %v vs %v", shards, qi, i, a[i].Dist, b[i].Dist)
				}
			}
		}
	}
}

func TestShardedDeterminism(t *testing.T) {
	data, g := testData(72, 900, 8, 5, 0.5)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 11}
	a, err := NewShardedIndex(data, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardedIndex(data, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 20; qi++ {
		q := g.GaussianVector(8)
		ra, rb := must(a.SearchBudget(q, 8, 64)), must(b.SearchBudget(q, 8, 64))
		if len(ra) != len(rb) {
			t.Fatalf("query %d: lengths %d vs %d", qi, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, i, ra[i], rb[i])
			}
		}
	}
}

func TestShardedGlobalIDs(t *testing.T) {
	// Every vector must be findable under its global id: searching for a
	// stored vector with a generous budget returns it at distance 0.
	data, _ := testData(73, 500, 8, 50, 0.3)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 32, Seed: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < len(data); id += 37 {
		res := must(sx.SearchBudget(data[id], 1, 5*len(data)))
		if len(res) != 1 || res[0].Dist != 0 {
			t.Fatalf("id %d: %+v", id, res)
		}
		if sx.Distance(data[res[0].ID], data[id]) != 0 {
			t.Fatalf("id %d: returned id %d is not an exact match", id, res[0].ID)
		}
	}
}

func TestShardedConfigAndEdgeCases(t *testing.T) {
	data, _ := testData(74, 40, 6, 4, 0.5)
	// More shards than vectors: capped so every shard is non-empty.
	sx, err := NewShardedIndex(data[:3], Config{Metric: Euclidean, M: 8, Seed: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sx.Shards() != 3 || sx.Len() != 3 {
		t.Fatalf("Shards=%d Len=%d", sx.Shards(), sx.Len())
	}
	// shards <= 0 selects GOMAXPROCS (at least one shard).
	sx, err = NewShardedIndex(data, Config{Metric: Euclidean, M: 8, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sx.Shards() < 1 || sx.M() != 8 || sx.Len() != 40 || sx.Bytes() <= 0 {
		t.Fatalf("Shards=%d M=%d Len=%d Bytes=%d", sx.Shards(), sx.M(), sx.Len(), sx.Bytes())
	}
	if sx.BuildTime() < 0 {
		t.Fatal("negative build time")
	}
	ix, off := sx.Shard(0)
	if ix == nil || off != 0 {
		t.Fatalf("Shard(0) = %v, %d", ix, off)
	}
	// Degenerate queries surface typed errors, never silent empties.
	if _, err := sx.Search(data[0], 0); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: err=%v, want ErrInvalidK", err)
	}
	if _, err := sx.SearchBudget(data[0], 3, 0); !errors.Is(err, ErrInvalidBudget) {
		t.Fatalf("lambda=0: err=%v, want ErrInvalidBudget", err)
	}
	// Errors propagate.
	if _, err := NewShardedIndex(nil, Config{Metric: Euclidean}, 2); err == nil {
		t.Fatal("empty dataset should fail")
	}
	if _, err := NewShardedIndex(data, Config{Metric: "nope"}, 2); err == nil {
		t.Fatal("unknown metric should fail")
	}
}

func TestShardedMultiProbe(t *testing.T) {
	data, _ := testData(75, 600, 8, 6, 0.5)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Probes: 17, Seed: 13}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := must(sx.SearchBudget(data[42], 1, 3*len(data)))
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("multi-probe sharded self-search: %+v", res)
	}
}

func TestShardOffsets(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []int
	}{
		{10, 1, []int{0, 10}},
		{10, 3, []int{0, 4, 7, 10}},
		{12, 4, []int{0, 3, 6, 9, 12}},
		{5, 5, []int{0, 1, 2, 3, 4, 5}},
	}
	for _, c := range cases {
		got := shardOffsets(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("n=%d s=%d: %v", c.n, c.shards, got)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("n=%d s=%d: %v want %v", c.n, c.shards, got, c.want)
			}
		}
	}
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	data, g := testData(76, 800, 10, 5, 0.5)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 21}, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sharded.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 4 || loaded.Len() != 800 || loaded.M() != 16 {
		t.Fatalf("shape after load: shards=%d len=%d m=%d", loaded.Shards(), loaded.Len(), loaded.M())
	}
	for qi := 0; qi < 10; qi++ {
		q := g.GaussianVector(10)
		a, b := must(sx.SearchBudget(q, 5, 80)), must(loaded.SearchBudget(q, 5, 80))
		if len(a) != len(b) {
			t.Fatalf("query %d: lengths differ", qi)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
	// Loading through the single-index API is refused with a clear error.
	if _, err := Load(path, data); err == nil {
		t.Fatal("Load should reject a sharded container")
	}
}

func TestLoadShardedAcceptsFormat1(t *testing.T) {
	data, _ := testData(77, 400, 8, 4, 0.5)
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 16, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "single.lccs")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	sx, err := LoadSharded(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if sx.Shards() != 1 || sx.Len() != 400 {
		t.Fatalf("wrapped format-1: shards=%d len=%d", sx.Shards(), sx.Len())
	}
	a, b := must(ix.SearchBudget(data[7], 5, 60)), must(sx.SearchBudget(data[7], 5, 60))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pos %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLoadShardedRejectsCorruption(t *testing.T) {
	data, _ := testData(78, 300, 8, 4, 0.5)
	sx, err := NewShardedIndex(data, Config{Metric: Euclidean, M: 16, Seed: 23}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Truncations at several depths: mid-header, mid-shard-table,
	// mid-shard-blob. All must error, never panic.
	for _, frac := range []float64{0.001, 0.01, 0.3, 0.9} {
		cut := blob[:int(float64(len(blob))*frac)]
		if _, err := LoadSharded(write("cut.lccs", cut), data); err == nil {
			t.Fatalf("truncation at %.1f%% should fail", frac*100)
		}
	}
	// Corrupt shard count (bytes right after the config header).
	bad := append([]byte(nil), blob...)
	hdrEnd := len(pkgMagic2) + 4 + len(Euclidean) + 3*8 + 8 + 8
	bad[hdrEnd] = 0xFF
	bad[hdrEnd+1] = 0xFF
	if _, err := LoadSharded(write("badcount.lccs", bad), data); err == nil {
		t.Fatal("corrupt shard count should fail")
	}
	// Corrupt a shard size entry.
	bad = append([]byte(nil), blob...)
	bad[hdrEnd+4] = 0xEE
	if _, err := LoadSharded(write("badsize.lccs", bad), data); err == nil {
		t.Fatal("corrupt shard size should fail")
	}
	// Wrong data slice fails the per-shard hash spot check.
	other, _ := testData(979, 300, 8, 4, 0.5)
	if _, err := LoadSharded(path, other); err == nil {
		t.Fatal("different data should fail")
	}
	if _, err := LoadSharded(path, nil); err == nil {
		t.Fatal("nil data should fail")
	}
	// Nil vectors (right length, zero dimension) must error, not panic
	// inside the LSH family constructor.
	if _, err := LoadSharded(path, make([][]float32, 300)); err == nil {
		t.Fatal("zero-dimensional data should fail")
	}
	if _, err := LoadSharded(filepath.Join(dir, "missing.lccs"), data); err == nil {
		t.Fatal("missing file should fail")
	}
}
