//go:build race

package lccs

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in normal builds; allocation-count tests skip
// themselves when it is set.
const raceEnabled = true
