package lccs

import (
	"errors"
	"testing"
)

// drainCursor pages through SearchCursor until the token runs out,
// concatenating every page.
func drainCursor(t *testing.T, cs CursorSearcher, q []float32, limit, lambda int, f *Filter) []Neighbor {
	t.Helper()
	var all []Neighbor
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 1000 {
			t.Fatal("cursor never exhausted")
		}
		page, next, err := cs.SearchCursor(q, limit, lambda, f, cursor)
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		all = append(all, page...)
		if next == "" {
			return all
		}
		cursor = next
	}
}

// TestCursorDrainEqualsOneShot pins the acceptance criterion: at an
// exhaustive budget, draining a cursor page by page yields exactly the
// one-shot top-n ordering, on every facade, filtered and not, across
// page sizes (including ones that don't divide the result count).
func TestCursorDrainEqualsOneShot(t *testing.T) {
	const n, dim = 120, 8
	data, attrs := filterTestData(n, dim)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 7, Budget: n}

	single, err := NewIndexWithAttrs(data, attrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedIndexWithAttrs(data, attrs, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamicIndex(nil, cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if _, err := dyn.AddWithAttrs(v, attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dyn.WaitRebuild()
	// Leave a few rows in the delta buffer so the buffer source is
	// exercised too.
	extra, extraAttrs := filterTestData(5, dim)
	for i, v := range extra {
		if _, err := dyn.AddWithAttrs(v, extraAttrs[i]); err != nil {
			t.Fatal(err)
		}
	}

	type facadeCase struct {
		cs     CursorSearcher
		fs     FilterSearcher
		nTotal int
	}
	facades := map[string]facadeCase{
		"index":   {single, single, n},
		"sharded": {sharded, sharded, n},
		"dynamic": {dyn, dyn, n + 5},
	}
	q := data[3]
	for fname, f := range testFilters() {
		for facade, fc := range facades {
			want, err := fc.fs.SearchFilterBudgetInto(q, fc.nTotal, fc.nTotal+5, f, nil)
			if err != nil {
				t.Fatalf("%s/%s one-shot: %v", facade, fname, err)
			}
			for _, limit := range []int{1, 3, 7, 200} {
				got := drainCursor(t, fc.cs, q, limit, fc.nTotal+5, f)
				if !neighborsEqual(got, want) {
					t.Errorf("%s/%s limit=%d: drain %v, one-shot %v", facade, fname, limit, got, want)
				}
			}
		}
	}
}

// TestCursorInvalidation pins the generation guard: tokens die on
// insert, delete, and rebuild, and malformed tokens are rejected.
func TestCursorInvalidation(t *testing.T) {
	const n, dim = 60, 6
	data, attrs := filterTestData(n, dim)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 3, Budget: n}
	dyn, err := NewDynamicIndex(nil, cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if _, err := dyn.AddWithAttrs(v, attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	q := data[0]

	mint := func() string {
		t.Helper()
		_, next, err := dyn.SearchCursor(q, 5, 0, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		if next == "" {
			t.Fatal("expected a continuation token")
		}
		return next
	}

	// Insert invalidates.
	tok := mint()
	if _, err := dyn.Add(data[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dyn.SearchCursor(q, 5, 0, nil, tok); !errors.Is(err, ErrCursorStale) {
		t.Errorf("after insert: err = %v, want ErrCursorStale", err)
	}

	// Delete invalidates.
	tok = mint()
	if !dyn.Delete(3) {
		t.Fatal("delete failed")
	}
	if _, _, err := dyn.SearchCursor(q, 5, 0, nil, tok); !errors.Is(err, ErrCursorInvalid) {
		t.Errorf("after delete: err = %v, want ErrCursorInvalid", err)
	}

	// Rebuild invalidates.
	tok = mint()
	if err := dyn.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dyn.SearchCursor(q, 5, 0, nil, tok); !errors.Is(err, ErrCursorStale) {
		t.Errorf("after rebuild: err = %v, want ErrCursorStale", err)
	}

	// A token minted for one query must not resume another.
	tok = mint()
	q2 := data[1]
	if _, _, err := dyn.SearchCursor(q2, 5, 0, nil, tok); !errors.Is(err, ErrCursorInvalid) {
		t.Errorf("query mismatch: err = %v, want ErrCursorInvalid", err)
	}
	// ... nor a different filter.
	f := &Filter{Terms: []FilterTerm{EqStr("color", "red")}}
	if _, _, err := dyn.SearchCursor(q, 5, 0, f, tok); !errors.Is(err, ErrCursorInvalid) {
		t.Errorf("filter mismatch: err = %v, want ErrCursorInvalid", err)
	}

	// Garbage tokens are rejected, not crashed on.
	for _, bad := range []string{"not-base64!!", "AAAA", "zzzz_-", ""} {
		if bad == "" {
			continue
		}
		if _, _, err := dyn.SearchCursor(q, 5, 0, nil, bad); !errors.Is(err, ErrCursorInvalid) {
			t.Errorf("garbage %q: err = %v, want ErrCursorInvalid", bad, err)
		}
	}

	// Immutable facades never invalidate: a token survives arbitrarily
	// many pages and other queries in between.
	ix, err := NewIndexWithAttrs(data, attrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, next, err := ix.SearchCursor(q, 5, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.SearchCursor(q2, 5, 0, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.SearchCursor(q, 5, 0, nil, next); err != nil {
		t.Errorf("immutable resume: %v", err)
	}
}

// TestCursorPageSizes checks page boundaries: no duplicates, no gaps,
// pages exactly limit-sized until the final partial page.
func TestCursorPageSizes(t *testing.T) {
	const n, dim = 50, 6
	data, attrs := filterTestData(n, dim)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 3, Budget: n}
	sx, err := NewShardedIndexWithAttrs(data, attrs, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := data[2]
	const limit = 7
	seen := map[int]bool{}
	cursor := ""
	total := 0
	for {
		page, next, err := sx.SearchCursor(q, limit, n, nil, cursor)
		if err != nil {
			t.Fatal(err)
		}
		total += len(page)
		for _, nb := range page {
			if seen[nb.ID] {
				t.Fatalf("id %d returned twice", nb.ID)
			}
			seen[nb.ID] = true
		}
		if next == "" {
			if len(page) > limit {
				t.Fatalf("oversized final page: %d", len(page))
			}
			break
		}
		if len(page) != limit {
			t.Fatalf("non-final page has %d results, want %d", len(page), limit)
		}
		cursor = next
	}
	if total != n {
		t.Fatalf("drained %d results, want %d", total, n)
	}
}
