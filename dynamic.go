package lccs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lccs/internal/core"
	"lccs/internal/idmap"
	"lccs/internal/obs"
	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// cursorEpoch seeds each DynamicIndex's write generation with an
// instance-unique starting value: time-seeded so generations never
// repeat across process restarts, strided so two instances in one
// process (e.g. a durable index before and after crash recovery) can
// never reach each other's range by ordinary write bumps. A cursor
// token is thereby bound to the index *instance* that minted it — after
// any reopen the token is rejected (ErrCursorStale) instead of silently
// resuming over a replayed, possibly renumbered result stream.
var cursorEpoch atomic.Uint64

func init() { cursorEpoch.Store(uint64(time.Now().UnixNano())) }

func nextCursorEpoch() uint64 { return cursorEpoch.Add(1 << 32) }

// DynamicIndex supports online inserts and deletes on top of the static
// CSA structure with a delta-main architecture: new vectors accumulate in
// an unindexed buffer that queries scan exactly, and when the buffer
// exceeds a threshold it is frozen and built into a new index shard **in
// the background** — writers keep appending to a fresh buffer while the
// shard builds, and the finished shard is swapped in under the write lock
// in O(1). The main index is therefore a growing sequence of immutable
// shards covering disjoint, contiguous id ranges; queries fan out across
// the shards and the buffer.
//
// Deletes are a first-class part of the lifecycle. A Delete tombstones
// the vector immediately (it stops appearing in results); the physical
// row is reclaimed by compaction: the background delta build drops
// tombstoned rows from the buffer before indexing it, and an explicit
// Rebuild compacts every shard and the buffer into one index over only
// the live rows — clearing the tombstone set and releasing the memory.
// Because compaction moves rows, vectors are addressed by stable
// external ids maintained in an idmap.Map: the id Add returns is valid
// forever, deleted ids are never reissued, and until the first
// compaction the mapping is a zero-cost identity.
//
// All vectors live in one growing flat store (vec.Store): Add copies the
// vector to the end of the contiguous block, shards index stable views
// of it, and the unindexed buffer is scanned with the store's bulk
// distance kernel — one forward pass over contiguous memory.
//
// Vector ids are assignment-ordered and stable across rebuilds and
// compactions: the i-th vector ever added (counting the initial
// dataset) has id i, forever. DynamicIndex is safe for concurrent use;
// neither readers nor writers are blocked by a background shard build
// beyond the O(1) swap.
//
// A DynamicIndex alone holds every write since the last Snapshot only
// in memory. For crash durability — inserts and deletes journaled in a
// write-ahead log before they are acknowledged, replayed on reopen —
// use OpenDurable, which wraps a DynamicIndex in a DurableIndex.
type DynamicIndex struct {
	mu   sync.RWMutex
	cond *sync.Cond // signaled when a background build finishes; L = &mu
	cfg  Config
	// cfgResolved is set once a build has resolved derived config fields
	// (bucket width); later shards reuse the same resolved values so all
	// shards are seed-equivalent.
	cfgResolved bool
	store       *vec.Store // all live (plus not-yet-compacted) rows, slot-ordered
	shards      []dynShard // immutable shards over slots [0, indexed)
	indexed     int        // prefix of the store covered by shards
	// ids maps stable external ids ⇔ dense store slots; compaction
	// shifts slots, never ids.
	ids *idmap.Map
	// deleted is the tombstone set, keyed by store slot (the space the
	// query path works in). Compaction removes reclaimed slots.
	deleted map[int]bool
	// rebuildAt triggers a background shard build when the buffer
	// reaches this size.
	rebuildAt int
	// building marks an in-flight background shard build (at most one).
	building bool
	// gen invalidates in-flight builds: Rebuild bumps it and a completing
	// background build from an older generation is discarded.
	gen uint64
	// buildErr holds the most recent background build failure; it is
	// surfaced (and cleared) by the next Add. A successful explicit
	// Rebuild supersedes the failed delta and clears it unseen.
	buildErr error
	// attrs holds the optional per-vector metadata, slot-aligned with
	// the store (rows beyond its length have none); nil until the first
	// attributed insert.
	attrs *vec.MetaStore
	// writes is the write generation guarding open cursors: any change
	// that could reorder or renumber the result stream — insert, delete,
	// compaction, shard swap-in, rebuild — bumps it, and a cursor token
	// minted under an older generation is rejected.
	writes uint64
	// ctxs pools the per-query scratch (shard fetch buffer, k-best row).
	ctxs sync.Pool
}

// dynShard is one immutable index shard covering slots
// [off, off+ix.Len()).
type dynShard struct {
	ix  *Index
	off int
	// dead counts tombstoned slots inside this shard's range, which is
	// exactly how far the shard's fetch must over-shoot k to still yield
	// k live candidates after filtering.
	dead int
}

// dynCtx is the pooled per-query scratch of a dynamic search.
type dynCtx struct {
	shardBuf []pqueue.Neighbor
	best     pqueue.KBest
	sorted   []pqueue.Neighbor
}

// DefaultRebuildThreshold is the buffer size that triggers a background
// shard build.
const DefaultRebuildThreshold = 4096

// buildIndexOver resolves the configuration against a store and builds a
// facade index — the shared path of the dynamic build sites (initial
// build, background delta shard, compaction, snapshot tail).
func buildIndexOver(store *vec.Store, cfg Config) (*Index, error) {
	cfg, err := resolveConfig(store, cfg)
	if err != nil {
		return nil, err
	}
	return newIndexFromStore(store, cfg)
}

// NewDynamicIndex builds a dynamic index over an initial dataset (which
// may be empty — pass nil — if all data arrives via Add). rebuildAt ≤ 0
// selects DefaultRebuildThreshold. The initial rows are copied into the
// index's flat store; data itself is not retained.
func NewDynamicIndex(data [][]float32, cfg Config, rebuildAt int) (*DynamicIndex, error) {
	if rebuildAt <= 0 {
		rebuildAt = DefaultRebuildThreshold
	}
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	d := &DynamicIndex{
		cfg:       cfg,
		store:     store,
		ids:       idmap.New(store.Len()),
		deleted:   make(map[int]bool),
		rebuildAt: rebuildAt,
		writes:    nextCursorEpoch(),
	}
	d.ctxs.New = func() any { return new(dynCtx) }
	d.cond = sync.NewCond(&d.mu)
	if store.Len() > 0 {
		ix, err := buildIndexOver(store.Slice(0, store.Len()), cfg)
		if err != nil {
			return nil, err
		}
		d.adoptConfigLocked(ix)
		d.shards = []dynShard{{ix: ix, off: 0}}
		d.indexed = store.Len()
	} else if err := validateConfig(cfg); err != nil {
		// No build runs yet on an empty start, so reject a config the
		// first build (or query) would otherwise fail on — turning a
		// construction-time error into a runtime surprise.
		return nil, err
	}
	return d, nil
}

// NewDynamicIndexFromSharded wraps an existing ShardedIndex — typically
// a snapshot written at shutdown and reloaded with LoadSharded — as a
// DynamicIndex, so a warm restart stays writable without rebuilding:
// the sharded index's shards become the dynamic main, new inserts
// buffer on top. data must be the slice the sharded index was built or
// loaded over (ids keep indexing it); the dynamic index adopts the
// sharded index's flat store rather than copying it. rebuildAt ≤ 0
// selects DefaultRebuildThreshold.
func NewDynamicIndexFromSharded(sx *ShardedIndex, data [][]float32, rebuildAt int) (*DynamicIndex, error) {
	if slots := sx.slots(); slots != len(data) {
		return nil, fmt.Errorf("lccs: sharded index covers %d vectors, data has %d", slots, len(data))
	}
	return NewDynamicIndexFromShardedStore(sx, rebuildAt)
}

// NewDynamicIndexFromShardedStore is NewDynamicIndexFromSharded without
// the row-slice cross-check: the sharded index's own flat store is
// adopted directly, so a warm restart (LoadShardedStore over a
// flat-loaded dataset) never materializes per-row slices. rebuildAt ≤ 0
// selects DefaultRebuildThreshold.
func NewDynamicIndexFromShardedStore(sx *ShardedIndex, rebuildAt int) (*DynamicIndex, error) {
	slots := sx.slots()
	if rebuildAt <= 0 {
		rebuildAt = DefaultRebuildThreshold
	}
	d := &DynamicIndex{
		cfg:         sx.cfg, // container headers hold the resolved config
		cfgResolved: true,
		// Adopt a capped view of the sharded index's store: the first
		// Add then grows a private copy of the block, so the still-live
		// ShardedIndex (documented safe for concurrent queries) is
		// never mutated, whichever constructor produced it.
		store:     sx.store.Slice(0, slots),
		shards:    make([]dynShard, len(sx.shards)),
		indexed:   slots,
		deleted:   make(map[int]bool, len(sx.dead)),
		rebuildAt: rebuildAt,
		writes:    nextCursorEpoch(),
	}
	// Adopt the sharded index's lifecycle state — the id map and the
	// tombstones a PKG3 snapshot carries across a restart — so deleted
	// ids stay dead and id allocation resumes past the watermark.
	if sx.ids != nil {
		d.ids = sx.ids.Clone()
	} else {
		d.ids = idmap.New(slots)
	}
	for slot := range sx.dead {
		d.deleted[slot] = true
	}
	if sx.attrs != nil {
		d.attrs = sx.attrs.Slice(slots)
	}
	for i, ix := range sx.shards {
		sh := dynShard{ix: ix, off: sx.offsets[i]}
		if sx.shardDead != nil {
			sh.dead = sx.shardDead[i]
		}
		d.shards[i] = sh
	}
	d.ctxs.New = func() any { return new(dynCtx) }
	d.cond = sync.NewCond(&d.mu)
	return d, nil
}

// adoptConfigLocked stores the resolved configuration of the first built
// index so every later shard hashes with seed-equivalent parameters.
func (d *DynamicIndex) adoptConfigLocked(ix *Index) {
	if !d.cfgResolved {
		d.cfg = ix.cfg
		d.cfgResolved = true
	}
}

// Add inserts a vector (copied into the flat store) and returns its id.
// Crossing the rebuild threshold starts a background shard build; Add
// itself never blocks on index construction. If a previous background
// build failed, its error is returned here (the insert itself still
// succeeded) and cleared.
func (d *DynamicIndex) Add(v []float32) (int, error) {
	return d.AddWithAttrs(v, nil)
}

// AddWithAttrs is Add with optional metadata attached to the vector:
// the attributes become filterable with SearchFilter and travel through
// snapshots and (on a DurableIndex) the WAL. A nil attrs is exactly Add.
func (d *DynamicIndex) AddWithAttrs(v []float32, a Attrs) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(v) == 0 {
		return 0, ErrEmptyVector
	}
	if dim := d.store.Dim(); dim != 0 && len(v) != dim {
		return 0, fmt.Errorf("%w: vector has %d dimensions, index has %d", ErrDimensionMismatch, len(v), dim)
	}
	slot := d.store.Append(v)
	if len(a) > 0 {
		if d.attrs == nil {
			d.attrs = vec.NewMetaStore(slot + 1)
		}
		d.attrs.PadTo(slot)
		d.attrs.Append(a)
	}
	id := d.ids.Alloc()
	d.writes++
	err := d.buildErr
	d.buildErr = nil
	d.maybeStartBuildLocked()
	return id, err
}

// Attrs returns the metadata of the live vector with the given id, or
// nil.
func (d *DynamicIndex) Attrs(id int) Attrs {
	d.mu.RLock()
	defer d.mu.RUnlock()
	slot, ok := d.ids.Slot(id)
	if !ok || d.deleted[slot] {
		return nil
	}
	return d.attrs.Row(slot)
}

// maybeStartBuildLocked freezes the buffer into a background shard build
// when it crossed the threshold and no build is already in flight. The
// buffer is compacted first — tombstoned rows that never made it into a
// shard are dropped before any index work is spent on them.
func (d *DynamicIndex) maybeStartBuildLocked() {
	if d.building || d.store.Len()-d.indexed < d.rebuildAt {
		return
	}
	d.compactBufferLocked()
	if d.store.Len()-d.indexed < d.rebuildAt {
		return // compaction shrank the buffer back under the threshold
	}
	d.building = true
	lo, hi := d.indexed, d.store.Len()
	// Freeze the delta: a Slice view is stable across later appends
	// (growth copies to a new block; in-place growth writes only beyond
	// hi), and vectors themselves are never mutated.
	delta := d.store.Slice(lo, hi)
	go d.buildShard(d.gen, lo, hi, delta, d.cfg)
}

// compactBufferLocked physically drops tombstoned rows from the
// unindexed buffer, remapping ids and releasing their slots; it reports
// whether anything was dropped. Rows already covered by an immutable
// shard are left in place (shard-local offsets depend on them); a full
// Rebuild reclaims those. The store is compacted by copy, never in
// place, so outstanding views — shard stores, snapshot rows, a frozen
// delta being indexed in the background — are unaffected; callers that
// compact while a background build may be in flight must invalidate it
// (bump d.gen), because the build's [lo, hi) range names pre-compaction
// slots.
func (d *DynamicIndex) compactBufferLocked() bool {
	dead := 0
	for slot := range d.deleted {
		if slot >= d.indexed {
			dead++
		}
	}
	if dead == 0 {
		return false
	}
	isDead := func(slot int) bool { return d.deleted[slot] }
	if d.attrs != nil {
		d.attrs = d.attrs.CompactCopy(d.store.Len(), d.indexed, isDead)
	}
	d.store = d.store.CompactCopy(d.indexed, isDead)
	d.ids.Compact(d.indexed, isDead)
	for slot := range d.deleted {
		if slot >= d.indexed {
			delete(d.deleted, slot)
		}
	}
	d.writes++ // compaction renumbers buffer slots; open cursors die
	return true
}

// buildShard builds one shard over a frozen delta outside the lock and
// swaps it in. A generation mismatch (an explicit Rebuild ran meanwhile)
// discards the result.
func (d *DynamicIndex) buildShard(gen uint64, lo, hi int, delta *vec.Store, cfg Config) {
	ix, err := buildIndexOver(delta, cfg)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.building = false
	if d.gen == gen {
		if err != nil {
			d.buildErr = err
		} else {
			d.adoptConfigLocked(ix)
			// Deletes that landed in [lo, hi) while the shard was
			// building become its filter over-fetch allowance.
			dead := 0
			for slot := range d.deleted {
				if slot >= lo && slot < hi {
					dead++
				}
			}
			d.shards = append(d.shards, dynShard{ix: ix, off: lo, dead: dead})
			d.indexed = hi
			d.writes++ // source set changed; open cursors die
		}
	}
	if err == nil {
		// The buffer may have crossed the threshold again while this
		// shard was building — including the stale-generation case,
		// where writes during an explicit Rebuild are still unindexed.
		// After a failed build, don't retry in a loop; the next Add
		// surfaces the error and re-triggers.
		d.maybeStartBuildLocked()
	}
	d.cond.Broadcast()
}

// WaitRebuild blocks until no background shard build is in flight. It
// does not prevent a later Add from starting a new one.
func (d *DynamicIndex) WaitRebuild() {
	d.mu.Lock()
	for d.building {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Delete tombstones a vector id: it stops appearing in results
// immediately, and its row is physically reclaimed by the next
// compaction (the background delta build for buffered rows, Rebuild for
// everything). It reports whether the id was live; deleting an unknown
// or already-deleted id is a no-op returning false.
func (d *DynamicIndex) Delete(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.ids.Slot(id)
	if !ok || d.deleted[slot] {
		return false
	}
	d.deleted[slot] = true
	if i := d.shardForSlotLocked(slot); i >= 0 {
		d.shards[i].dead++
	}
	d.writes++
	return true
}

// shardForSlotLocked returns the index of the shard covering slot, or
// -1 when the slot lives in the unindexed buffer.
func (d *DynamicIndex) shardForSlotLocked(slot int) int {
	if slot >= d.indexed || len(d.shards) == 0 {
		return -1
	}
	lo, hi := 0, len(d.shards)-1
	for lo < hi { // find the last shard with off ≤ slot
		mid := (lo + hi + 1) / 2
		if d.shards[mid].off <= slot {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Deleted returns the number of pending tombstones — deleted vectors
// whose rows the next compaction will reclaim.
func (d *DynamicIndex) Deleted() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.deleted)
}

// idWatermark returns the next id Add will assign — the never-reused
// monotone allocation watermark the durable layer persists when there
// are no vectors left to carry it.
func (d *DynamicIndex) idWatermark() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ids.Next()
}

// restoreWatermark installs a persisted id watermark on a freshly
// constructed, never-written index: the next Add allocates `next`, so
// ids deleted before the previous process emptied out are never
// reissued. It is the durable layer's recovery hook for the
// empty-snapshot manifest.
func (d *DynamicIndex) restoreWatermark(next int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.store.Len() != 0 || d.ids.Next() != 0 {
		return fmt.Errorf("lccs: watermark restore on a non-fresh index (%d rows, next id %d)", d.store.Len(), d.ids.Next())
	}
	m, err := idmap.Restore([]int{}, next)
	if err != nil {
		return err
	}
	d.ids = m
	return nil
}

// Rebuild synchronously compacts every shard and the buffer into a
// single index over only the live vectors: tombstoned rows are
// physically dropped, the tombstone set is cleared, and their memory is
// released (ids of surviving vectors are unchanged). It invalidates any
// in-flight background build and blocks readers and writers for the
// duration — the background path is the production path; Rebuild is for
// explicit compaction points.
func (d *DynamicIndex) Rebuild() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gen++ // discard any in-flight background build
	// Compact into fresh state and commit only after the build succeeds,
	// so a failed rebuild leaves the index exactly as it was.
	store, ids, attrs := d.store, d.ids, d.attrs
	if len(d.deleted) > 0 {
		isDead := func(slot int) bool { return d.deleted[slot] }
		if attrs != nil {
			attrs = attrs.CompactCopy(d.store.Len(), 0, isDead)
		}
		store = d.store.CompactCopy(0, isDead)
		ids = d.ids.Clone()
		ids.Compact(0, isDead)
	}
	n := store.Len()
	if n == 0 {
		// Everything was deleted (or nothing ever added): no index to
		// build, nothing buffered.
		d.store, d.ids, d.attrs = store, ids, attrs
		d.deleted = make(map[int]bool)
		d.shards = nil
		d.indexed = 0
		d.buildErr = nil
		d.writes++
		return nil
	}
	ix, err := buildIndexOver(store.Slice(0, n), d.cfg)
	if err != nil {
		return err
	}
	d.store, d.ids, d.attrs = store, ids, attrs
	d.deleted = make(map[int]bool)
	d.adoptConfigLocked(ix)
	d.shards = []dynShard{{ix: ix, off: 0}}
	d.indexed = n
	d.buildErr = nil
	d.writes++
	return nil
}

// Len returns the number of live (non-deleted) vectors.
func (d *DynamicIndex) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Len() - len(d.deleted)
}

// Buffered returns the number of vectors not yet covered by an index
// shard (scanned exactly on every query). A background build in flight
// counts as buffered until its swap completes.
func (d *DynamicIndex) Buffered() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Len() - d.indexed
}

// Dim returns the dimensionality of the stored vectors, or 0 before the
// first vector arrives.
func (d *DynamicIndex) Dim() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Dim()
}

// Shards returns the number of index shards currently serving queries.
func (d *DynamicIndex) Shards() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.shards)
}

// Search returns the k nearest live vectors: every shard's candidates
// (at the default budget) merged with an exact scan of the buffer.
func (d *DynamicIndex) Search(q []float32, k int) ([]Neighbor, error) {
	return d.SearchBudget(q, k, d.defaultBudget())
}

// SearchInto is Search appending into dst (reset to dst[:0] first).
func (d *DynamicIndex) SearchInto(q []float32, k int, dst []Neighbor) ([]Neighbor, error) {
	return d.SearchBudgetInto(q, k, d.defaultBudget(), dst)
}

// defaultBudget returns the facade's default candidate budget: the
// resolved configuration's, or the package default before the first
// build resolves one.
func (d *DynamicIndex) defaultBudget() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.cfg.Budget > 0 {
		return d.cfg.Budget
	}
	return defaultBudget
}

// SearchBudget is Search with an explicit candidate budget λ. As in
// ShardedIndex, the budget is divided across the index shards (⌈λ/S⌉
// each), so a given budget means comparable verification work on every
// Searcher backend; the insert buffer is always scanned exactly.
func (d *DynamicIndex) SearchBudget(q []float32, k, lambda int) ([]Neighbor, error) {
	return d.SearchBudgetInto(q, k, lambda, nil)
}

// SearchBudgetInto is SearchBudget appending into dst (reset to dst[:0]
// first; dst may be nil). Shard fetches and the k-best row ride in
// pooled scratch, so a steady-state query's only allocations are those
// of the result row growth.
func (d *DynamicIndex) SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error) {
	return d.searchCostInto(q, k, lambda, nil, dst, nil, nil)
}

// SearchBudgetIntoTraced is SearchBudgetInto recording spans into tr:
// one shard_scan span per immutable shard (CSA comparison and verified-
// candidate counters), a buffer_scan span over the unindexed delta
// buffer, and a merge span, under a query root span. A nil tr is
// exactly SearchBudgetInto; a non-positive lambda selects the default
// budget.
func (d *DynamicIndex) SearchBudgetIntoTraced(q []float32, k, lambda int, dst []Neighbor, tr *Trace) ([]Neighbor, error) {
	return d.SearchCostInto(q, k, lambda, nil, dst, nil, tr)
}

// SearchCostInto is the fully instrumented dynamic search: filter f
// restricts results (nil or empty means unfiltered), co accumulates the
// query's cost record (nil skips accounting), tr records spans (nil
// skips tracing). Each argument degrades independently; all three nil
// is exactly SearchBudgetInto. A non-positive lambda selects the
// default budget.
func (d *DynamicIndex) SearchCostInto(q []float32, k, lambda int, f *Filter, dst []Neighbor, co *Cost, tr *Trace) ([]Neighbor, error) {
	if lambda <= 0 {
		lambda = d.defaultBudget()
	}
	return d.searchCostInto(q, k, lambda, f, dst, co, tr)
}

func (d *DynamicIndex) searchCostInto(q []float32, k, lambda int, f *Filter, dst []Neighbor, co *Cost, tr *Trace) ([]Neighbor, error) {
	filtered := f != nil && !f.Empty()
	if filtered {
		if err := validateFilter(f); err != nil {
			return nil, err
		}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := validateQuery(q, d.store.Dim(), k, lambda); err != nil {
		return nil, err
	}
	if d.store.Len() == 0 {
		return nil, nil
	}
	root := tr.StartSpan(obs.StageQuery, -1) // nil-safe: -1 when untraced
	ctx := d.ctxs.Get().(*dynCtx)
	ctx.best.Reset(k)
	// searchOffsetInto shifts shard-local slots into the global slot
	// space. Shard ranges are disjoint, so no dedup is needed.
	lambdaShard := lambda
	if s := len(d.shards); s > 1 {
		lambdaShard = (lambda + s - 1) / s
	}
	metered := co != nil || tr != nil
	for i, sh := range d.shards {
		sp := -1
		if tr != nil {
			sp = tr.StartShardSpan(obs.StageShardScan, root, i)
		}
		var stats core.SearchStats
		switch {
		case filtered:
			// The accept predicate filters tombstones too, so the plain
			// fetch of k matching live rows needs no over-fetch allowance.
			ctx.shardBuf, stats = sh.ix.searchFilterOffsetIntoStats(q, k, lambdaShard, sh.off, d.acceptLocked(f, sh.off), ctx.shardBuf)
		case metered:
			ctx.shardBuf, stats = sh.ix.searchOffsetIntoStats(q, fetchForShard(k, sh.dead, sh.ix.Len()), lambdaShard, sh.off, ctx.shardBuf)
		default:
			// Over-fetch exactly the shard's own tombstone count — never
			// more than the shard holds — so k live results survive
			// filtering without the fetch growing with global churn.
			ctx.shardBuf = sh.ix.searchOffsetInto(q, fetchForShard(k, sh.dead, sh.ix.Len()), lambdaShard, sh.off, ctx.shardBuf)
		}
		if tr != nil {
			obs.ObserveDur(obs.StageShardScan, tr.FinishSpanCost(sp, int64(stats.Comparisons), int64(stats.Candidates), stats.BytesScanned))
		}
		co.addStats(stats)
		if filtered {
			for _, nb := range ctx.shardBuf {
				ctx.best.Add(nb.ID, nb.Dist)
			}
		} else {
			for _, nb := range ctx.shardBuf {
				if !d.deleted[nb.ID] {
					ctx.best.Add(nb.ID, nb.Dist)
				}
			}
		}
	}
	// The unindexed buffer: one bulk kernel pass over the flat block.
	bufSpan := tr.StartSpan(obs.StageBufferScan, root)
	bufRows := d.store.Len() - d.indexed
	rejected := 0
	if filtered {
		d.store.Scan(d.indexed, d.store.Len(), q, d.metricLocked(), func(slot int, dist float64) {
			if d.deleted[slot] {
				return
			}
			if !f.Matches(d.attrs.Row(slot)) {
				rejected++
				return
			}
			ctx.best.Add(slot, dist)
		})
	} else {
		d.store.Scan(d.indexed, d.store.Len(), q, d.metricLocked(), func(slot int, dist float64) {
			if !d.deleted[slot] {
				ctx.best.Add(slot, dist)
			}
		})
	}
	// The buffer scan reads every row's full float32 payload exactly
	// once; rows the predicate rejected still paid for their distance
	// (Comparisons) but do not count as candidates, matching the core
	// accounting.
	bufBytes := int64(bufRows) * int64(d.store.Dim()) * 4
	if tr != nil {
		obs.ObserveDur(obs.StageBufferScan, tr.FinishSpanCost(bufSpan, int64(bufRows), int64(bufRows-rejected), bufBytes))
	}
	if co != nil {
		co.addStats(core.SearchStats{
			Comparisons:    bufRows,
			Candidates:     bufRows - rejected,
			BytesScanned:   bufBytes,
			FilterRejected: rejected,
		})
	}
	mergeSpan := tr.StartSpan(obs.StageMerge, root)
	ctx.sorted = ctx.best.AppendSorted(ctx.sorted[:0])
	if dst == nil {
		dst = make([]Neighbor, 0, len(ctx.sorted))
	}
	dst = dst[:0]
	for _, nb := range ctx.sorted {
		// Results leave in the stable external id space.
		dst = append(dst, Neighbor{ID: d.ids.Ext(nb.ID), Dist: nb.Dist})
	}
	d.ctxs.Put(ctx)
	if tr != nil {
		obs.ObserveDur(obs.StageMerge, tr.FinishSpanN(mergeSpan, int64(len(dst)), 0))
		obs.ObserveDur(obs.StageQuery, tr.FinishSpan(root))
	}
	return dst, nil
}

// SearchFilter returns the k nearest live vectors matching f under the
// default candidate budget.
func (d *DynamicIndex) SearchFilter(q []float32, k int, f *Filter) ([]Neighbor, error) {
	return d.SearchFilterBudgetInto(q, k, d.defaultBudget(), f, nil)
}

// SearchFilterBudgetInto is SearchFilter with an explicit budget λ,
// appending into dst. Shard candidate streams drain past non-matching
// and tombstoned rows before any distance work; the buffer scan applies
// the predicate per row.
func (d *DynamicIndex) SearchFilterBudgetInto(q []float32, k, lambda int, f *Filter, dst []Neighbor) ([]Neighbor, error) {
	return d.searchCostInto(q, k, lambda, f, dst, nil, nil)
}

// acceptLocked builds the per-shard candidate predicate of a filtered
// dynamic query: live and matching, in the global slot space.
func (d *DynamicIndex) acceptLocked(f *Filter, off int) func(int) bool {
	return func(local int) bool {
		glob := local + off
		return !d.deleted[glob] && f.Matches(d.attrs.Row(glob))
	}
}

// SearchBatch answers many queries concurrently under the default
// candidate budget; results are returned in query order.
func (d *DynamicIndex) SearchBatch(queries [][]float32, k int) ([][]Neighbor, error) {
	return d.SearchBatchBudget(queries, k, d.defaultBudget())
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (d *DynamicIndex) SearchBatchBudget(queries [][]float32, k, lambda int) ([][]Neighbor, error) {
	return searchBatch(d, queries, k, lambda)
}

// Distance returns the configured metric's distance between two vectors.
func (d *DynamicIndex) Distance(a, b []float32) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.metricLocked().Distance(a, b)
}

// Snapshot freezes the current contents into a point-in-time view: the
// slot-ordered vector slice (rows are views into the flat store) and a
// ShardedIndex over it, assembled from the existing immutable shards
// plus one freshly built shard covering the unindexed buffer. The
// ShardedIndex can be persisted with Save and reloaded against the
// returned vectors with LoadSharded, so buffered inserts survive a
// process restart without replaying them.
//
// Deletion state travels with the snapshot. The buffer is compacted
// first, so tombstones that never reached a shard are simply gone; the
// rest — tombstoned slots inside immutable shards, and the id map that
// keeps external ids stable across compactions — is carried by the
// ShardedIndex and persisted by Save in the LCCSPKG3 container. The
// snapshot therefore never resurrects a deleted id: not in its own
// results, and not after a save/load round trip. (The returned vector
// slice still includes rows tombstoned inside shards — the shard
// structures index them positionally — but no search will return them.)
//
// Snapshot blocks writers while the buffer shard builds; it is meant for
// shutdown and checkpoint paths, not the hot loop.
func (d *DynamicIndex) Snapshot() ([][]float32, *ShardedIndex, error) {
	frozen, sx, err := d.snapshotStore()
	if err != nil {
		return nil, nil, err
	}
	return frozen.Rows(), sx, nil
}

// snapshotStore is Snapshot returning the frozen flat store itself —
// the durable checkpoint path persists the block directly instead of
// materializing per-row views.
func (d *DynamicIndex) snapshotStore() (*vec.Store, *ShardedIndex, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.compactBufferLocked() { // buffered tombstones never reach disk
		// Slots shifted: an in-flight background build over the
		// pre-compaction buffer must not swap in. Its completion handler
		// restarts a build over the corrected state.
		d.gen++
	}
	n := d.store.Len()
	if n == 0 {
		return nil, nil, errors.New("lccs: nothing to snapshot: empty dynamic index")
	}
	shards := make([]*Index, 0, len(d.shards)+1)
	offsets := make([]int, 0, len(d.shards)+2)
	shardDead := make([]int, 0, len(d.shards)+1)
	for _, sh := range d.shards {
		shards = append(shards, sh.ix)
		offsets = append(offsets, sh.off)
		shardDead = append(shardDead, sh.dead)
	}
	if d.indexed < n {
		tail, err := buildIndexOver(d.store.Slice(d.indexed, n), d.cfg)
		if err != nil {
			return nil, nil, err
		}
		d.adoptConfigLocked(tail)
		shards = append(shards, tail)
		offsets = append(offsets, d.indexed)
		shardDead = append(shardDead, 0) // the buffer was just compacted
	}
	offsets = append(offsets, n)
	budget := d.cfg.Budget
	if budget <= 0 {
		budget = defaultBudget
	}
	frozen := d.store.Slice(0, n)
	sx := &ShardedIndex{
		cfg:     d.cfg,
		store:   frozen,
		shards:  shards,
		offsets: offsets,
		budget:  budget,
		dim:     d.store.Dim(),
	}
	if !d.ids.Identity() {
		sx.ids = d.ids.Clone()
	}
	if d.attrs != nil && !d.attrs.Empty() {
		sx.attrs = d.attrs.Slice(n)
	}
	if len(d.deleted) > 0 {
		sx.dead = make(map[int]bool, len(d.deleted))
		for slot := range d.deleted {
			sx.dead[slot] = true
		}
		sx.shardDead = shardDead
	}
	sx.initPool()
	return frozen, sx, nil
}

// Vector returns the vector stored under id as a read-only view into
// the flat store. Tombstoned ids keep answering until a compaction
// reclaims their row; afterwards (and for ids never assigned) Vector
// returns nil.
func (d *DynamicIndex) Vector(id int) []float32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	slot, ok := d.ids.Slot(id)
	if !ok {
		return nil
	}
	return d.store.Row(slot)
}

// metricLocked returns the configured distance metric, usable before the
// first index exists.
func (d *DynamicIndex) metricLocked() vec.Metric {
	if len(d.shards) > 0 {
		return d.shards[0].ix.metric
	}
	// No index yet: resolve the metric from the config. familyFor needs
	// a dimension; any positive one works for metric resolution.
	dim := d.store.Dim()
	if dim == 0 {
		dim = 1
	}
	cfg := d.cfg
	if cfg.Metric == Euclidean && cfg.BucketWidth == 0 {
		cfg.BucketWidth = 1 // metric resolution only; not used for hashing
	}
	fam, err := familyFor(cfg, dim)
	if err != nil {
		// Unknown metric: surface loudly at query time.
		panic(err)
	}
	return fam.Metric()
}
