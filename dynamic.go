package lccs

import (
	"errors"
	"fmt"
	"sync"

	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// DynamicIndex supports online inserts and deletes on top of the static
// CSA structure with a delta-main architecture: new vectors accumulate in
// an unindexed buffer that queries scan exactly, and when the buffer
// exceeds a threshold it is frozen and built into a new index shard **in
// the background** — writers keep appending to a fresh buffer while the
// shard builds, and the finished shard is swapped in under the write lock
// in O(1). The main index is therefore a growing sequence of immutable
// shards covering disjoint, contiguous id ranges; queries fan out across
// the shards and the buffer. Deletes are tombstones filtered from
// results; an explicit Rebuild compacts every shard and the buffer into
// one index synchronously.
//
// All vectors live in one growing flat store (vec.Store): Add copies the
// vector to the end of the contiguous block, shards index stable views
// of it, and the unindexed buffer is scanned with the store's bulk
// distance kernel — one forward pass over contiguous memory.
//
// Vector ids are assignment-ordered and stable across rebuilds: the i-th
// vector ever added (counting the initial dataset) has id i, forever.
// DynamicIndex is safe for concurrent use; neither readers nor writers
// are blocked by a background shard build beyond the O(1) swap.
type DynamicIndex struct {
	mu   sync.RWMutex
	cond *sync.Cond // signaled when a background build finishes; L = &mu
	cfg  Config
	// cfgResolved is set once a build has resolved derived config fields
	// (bucket width); later shards reuse the same resolved values so all
	// shards are seed-equivalent.
	cfgResolved bool
	store       *vec.Store // all vectors ever added, id-ordered, one flat block
	shards      []dynShard // immutable shards over ids [0, indexed)
	indexed     int        // prefix of the store covered by shards
	deleted     map[int]bool
	// rebuildAt triggers a background shard build when the buffer
	// reaches this size.
	rebuildAt int
	// building marks an in-flight background shard build (at most one).
	building bool
	// gen invalidates in-flight builds: Rebuild bumps it and a completing
	// background build from an older generation is discarded.
	gen uint64
	// buildErr holds the most recent background build failure; it is
	// surfaced (and cleared) by the next Add. A successful explicit
	// Rebuild supersedes the failed delta and clears it unseen.
	buildErr error
	// ctxs pools the per-query scratch (shard fetch buffer, k-best row).
	ctxs sync.Pool
}

// dynShard is one immutable index shard covering ids [off, off+ix.Len()).
type dynShard struct {
	ix  *Index
	off int
}

// dynCtx is the pooled per-query scratch of a dynamic search.
type dynCtx struct {
	shardBuf []pqueue.Neighbor
	best     pqueue.KBest
	sorted   []pqueue.Neighbor
}

// DefaultRebuildThreshold is the buffer size that triggers a background
// shard build.
const DefaultRebuildThreshold = 4096

// buildIndexOver resolves the configuration against a store and builds a
// facade index — the shared path of the dynamic build sites (initial
// build, background delta shard, compaction, snapshot tail).
func buildIndexOver(store *vec.Store, cfg Config) (*Index, error) {
	cfg, err := resolveConfig(store, cfg)
	if err != nil {
		return nil, err
	}
	return newIndexFromStore(store, cfg)
}

// NewDynamicIndex builds a dynamic index over an initial dataset (which
// may be empty — pass nil — if all data arrives via Add). rebuildAt ≤ 0
// selects DefaultRebuildThreshold. The initial rows are copied into the
// index's flat store; data itself is not retained.
func NewDynamicIndex(data [][]float32, cfg Config, rebuildAt int) (*DynamicIndex, error) {
	if rebuildAt <= 0 {
		rebuildAt = DefaultRebuildThreshold
	}
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	d := &DynamicIndex{
		cfg:       cfg,
		store:     store,
		deleted:   make(map[int]bool),
		rebuildAt: rebuildAt,
	}
	d.ctxs.New = func() any { return new(dynCtx) }
	d.cond = sync.NewCond(&d.mu)
	if store.Len() > 0 {
		ix, err := buildIndexOver(store.Slice(0, store.Len()), cfg)
		if err != nil {
			return nil, err
		}
		d.adoptConfigLocked(ix)
		d.shards = []dynShard{{ix: ix, off: 0}}
		d.indexed = store.Len()
	} else if err := validateConfig(cfg); err != nil {
		// No build runs yet on an empty start, so reject a config the
		// first build (or query) would otherwise fail on — turning a
		// construction-time error into a runtime surprise.
		return nil, err
	}
	return d, nil
}

// NewDynamicIndexFromSharded wraps an existing ShardedIndex — typically
// a snapshot written at shutdown and reloaded with LoadSharded — as a
// DynamicIndex, so a warm restart stays writable without rebuilding:
// the sharded index's shards become the dynamic main, new inserts
// buffer on top. data must be the slice the sharded index was built or
// loaded over (ids keep indexing it); the dynamic index adopts the
// sharded index's flat store rather than copying it. rebuildAt ≤ 0
// selects DefaultRebuildThreshold.
func NewDynamicIndexFromSharded(sx *ShardedIndex, data [][]float32, rebuildAt int) (*DynamicIndex, error) {
	if sx.Len() != len(data) {
		return nil, fmt.Errorf("lccs: sharded index covers %d vectors, data has %d", sx.Len(), len(data))
	}
	if rebuildAt <= 0 {
		rebuildAt = DefaultRebuildThreshold
	}
	d := &DynamicIndex{
		cfg:         sx.cfg, // container headers hold the resolved config
		cfgResolved: true,
		// Adopt a capped view of the sharded index's store: the first
		// Add then grows a private copy of the block, so the still-live
		// ShardedIndex (documented safe for concurrent queries) is
		// never mutated, whichever constructor produced it.
		store:     sx.store.Slice(0, sx.Len()),
		shards:    make([]dynShard, len(sx.shards)),
		indexed:   sx.Len(),
		deleted:   make(map[int]bool),
		rebuildAt: rebuildAt,
	}
	for i, ix := range sx.shards {
		d.shards[i] = dynShard{ix: ix, off: sx.offsets[i]}
	}
	d.ctxs.New = func() any { return new(dynCtx) }
	d.cond = sync.NewCond(&d.mu)
	return d, nil
}

// adoptConfigLocked stores the resolved configuration of the first built
// index so every later shard hashes with seed-equivalent parameters.
func (d *DynamicIndex) adoptConfigLocked(ix *Index) {
	if !d.cfgResolved {
		d.cfg = ix.cfg
		d.cfgResolved = true
	}
}

// Add inserts a vector (copied into the flat store) and returns its id.
// Crossing the rebuild threshold starts a background shard build; Add
// itself never blocks on index construction. If a previous background
// build failed, its error is returned here (the insert itself still
// succeeded) and cleared.
func (d *DynamicIndex) Add(v []float32) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(v) == 0 {
		return 0, ErrEmptyVector
	}
	if dim := d.store.Dim(); dim != 0 && len(v) != dim {
		return 0, fmt.Errorf("%w: vector has %d dimensions, index has %d", ErrDimensionMismatch, len(v), dim)
	}
	id := d.store.Append(v)
	err := d.buildErr
	d.buildErr = nil
	d.maybeStartBuildLocked()
	return id, err
}

// maybeStartBuildLocked freezes the buffer into a background shard build
// when it crossed the threshold and no build is already in flight.
func (d *DynamicIndex) maybeStartBuildLocked() {
	if d.building || d.store.Len()-d.indexed < d.rebuildAt {
		return
	}
	d.building = true
	lo, hi := d.indexed, d.store.Len()
	// Freeze the delta: a Slice view is stable across later appends
	// (growth copies to a new block; in-place growth writes only beyond
	// hi), and vectors themselves are never mutated.
	delta := d.store.Slice(lo, hi)
	go d.buildShard(d.gen, lo, hi, delta, d.cfg)
}

// buildShard builds one shard over a frozen delta outside the lock and
// swaps it in. A generation mismatch (an explicit Rebuild ran meanwhile)
// discards the result.
func (d *DynamicIndex) buildShard(gen uint64, lo, hi int, delta *vec.Store, cfg Config) {
	ix, err := buildIndexOver(delta, cfg)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.building = false
	if d.gen == gen {
		if err != nil {
			d.buildErr = err
		} else {
			d.adoptConfigLocked(ix)
			d.shards = append(d.shards, dynShard{ix: ix, off: lo})
			d.indexed = hi
		}
	}
	if err == nil {
		// The buffer may have crossed the threshold again while this
		// shard was building — including the stale-generation case,
		// where writes during an explicit Rebuild are still unindexed.
		// After a failed build, don't retry in a loop; the next Add
		// surfaces the error and re-triggers.
		d.maybeStartBuildLocked()
	}
	d.cond.Broadcast()
}

// WaitRebuild blocks until no background shard build is in flight. It
// does not prevent a later Add from starting a new one.
func (d *DynamicIndex) WaitRebuild() {
	d.mu.Lock()
	for d.building {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Delete tombstones a vector id; it stops appearing in results. Deleting
// an unknown id is a no-op.
func (d *DynamicIndex) Delete(id int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= 0 && id < d.store.Len() {
		d.deleted[id] = true
	}
}

// Rebuild synchronously compacts every shard and the buffer into a single
// index over all vectors. It invalidates any in-flight background build
// and blocks readers and writers for the duration — the background path
// is the production path; Rebuild is for explicit compaction points.
func (d *DynamicIndex) Rebuild() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gen++ // discard any in-flight background build
	n := d.store.Len()
	if n == 0 {
		return nil
	}
	ix, err := buildIndexOver(d.store.Slice(0, n), d.cfg)
	if err != nil {
		return err
	}
	d.adoptConfigLocked(ix)
	d.shards = []dynShard{{ix: ix, off: 0}}
	d.indexed = n
	d.buildErr = nil
	return nil
}

// Len returns the number of live (non-deleted) vectors.
func (d *DynamicIndex) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Len() - len(d.deleted)
}

// Buffered returns the number of vectors not yet covered by an index
// shard (scanned exactly on every query). A background build in flight
// counts as buffered until its swap completes.
func (d *DynamicIndex) Buffered() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Len() - d.indexed
}

// Dim returns the dimensionality of the stored vectors, or 0 before the
// first vector arrives.
func (d *DynamicIndex) Dim() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Dim()
}

// Shards returns the number of index shards currently serving queries.
func (d *DynamicIndex) Shards() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.shards)
}

// Search returns the k nearest live vectors: every shard's candidates
// (at the default budget) merged with an exact scan of the buffer.
func (d *DynamicIndex) Search(q []float32, k int) ([]Neighbor, error) {
	return d.SearchBudget(q, k, d.defaultBudget())
}

// SearchInto is Search appending into dst (reset to dst[:0] first).
func (d *DynamicIndex) SearchInto(q []float32, k int, dst []Neighbor) ([]Neighbor, error) {
	return d.SearchBudgetInto(q, k, d.defaultBudget(), dst)
}

// defaultBudget returns the facade's default candidate budget: the
// resolved configuration's, or the package default before the first
// build resolves one.
func (d *DynamicIndex) defaultBudget() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.cfg.Budget > 0 {
		return d.cfg.Budget
	}
	return defaultBudget
}

// SearchBudget is Search with an explicit candidate budget λ. As in
// ShardedIndex, the budget is divided across the index shards (⌈λ/S⌉
// each), so a given budget means comparable verification work on every
// Searcher backend; the insert buffer is always scanned exactly.
func (d *DynamicIndex) SearchBudget(q []float32, k, lambda int) ([]Neighbor, error) {
	return d.SearchBudgetInto(q, k, lambda, nil)
}

// SearchBudgetInto is SearchBudget appending into dst (reset to dst[:0]
// first; dst may be nil). Shard fetches and the k-best row ride in
// pooled scratch, so a steady-state query's only allocations are those
// of the result row growth.
func (d *DynamicIndex) SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := validateQuery(q, d.store.Dim(), k, lambda); err != nil {
		return nil, err
	}
	if d.store.Len() == 0 {
		return nil, nil
	}
	ctx := d.ctxs.Get().(*dynCtx)
	// Over-fetch to survive tombstone filtering.
	fetch := k + len(d.deleted)
	ctx.best.Reset(k)
	push := func(id int, dist float64) {
		if !d.deleted[id] {
			ctx.best.Add(id, dist)
		}
	}
	// searchOffsetInto shifts shard-local ids into the global id space.
	// Shard ranges are disjoint, so no dedup is needed.
	lambdaShard := lambda
	if s := len(d.shards); s > 1 {
		lambdaShard = (lambda + s - 1) / s
	}
	for _, sh := range d.shards {
		ctx.shardBuf = sh.ix.searchOffsetInto(q, fetch, lambdaShard, sh.off, ctx.shardBuf)
		for _, nb := range ctx.shardBuf {
			push(nb.ID, nb.Dist)
		}
	}
	// The unindexed buffer: one bulk kernel pass over the flat block.
	d.store.Scan(d.indexed, d.store.Len(), q, d.metricLocked(), push)
	ctx.sorted = ctx.best.AppendSorted(ctx.sorted[:0])
	if dst == nil {
		dst = make([]Neighbor, 0, len(ctx.sorted))
	}
	dst = appendNeighbors(dst[:0], ctx.sorted)
	d.ctxs.Put(ctx)
	return dst, nil
}

// SearchBatch answers many queries concurrently under the default
// candidate budget; results are returned in query order.
func (d *DynamicIndex) SearchBatch(queries [][]float32, k int) ([][]Neighbor, error) {
	return d.SearchBatchBudget(queries, k, d.defaultBudget())
}

// SearchBatchBudget is SearchBatch with an explicit candidate budget λ.
func (d *DynamicIndex) SearchBatchBudget(queries [][]float32, k, lambda int) ([][]Neighbor, error) {
	return searchBatch(d, queries, k, lambda)
}

// Distance returns the configured metric's distance between two vectors.
func (d *DynamicIndex) Distance(a, b []float32) float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.metricLocked().Distance(a, b)
}

// Snapshot freezes the current contents into a point-in-time view: the
// full id-ordered vector slice (including tombstoned slots, so ids stay
// stable; the rows are views into the flat store) and a ShardedIndex
// over it, assembled from the existing immutable shards plus one freshly
// built shard covering the unindexed buffer. The ShardedIndex can be
// persisted with Save (the LCCSPKG2 container) and reloaded against the
// returned vectors with LoadSharded, so buffered inserts survive a
// process restart without replaying them.
//
// Snapshot blocks writers while the buffer shard builds; it is meant for
// shutdown and checkpoint paths, not the hot loop. Tombstones are not
// part of the container format — callers that need them must persist the
// deleted-id set themselves.
func (d *DynamicIndex) Snapshot() ([][]float32, *ShardedIndex, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.store.Len()
	if n == 0 {
		return nil, nil, errors.New("lccs: nothing to snapshot: empty dynamic index")
	}
	shards := make([]*Index, 0, len(d.shards)+1)
	offsets := make([]int, 0, len(d.shards)+2)
	for _, sh := range d.shards {
		shards = append(shards, sh.ix)
		offsets = append(offsets, sh.off)
	}
	if d.indexed < n {
		tail, err := buildIndexOver(d.store.Slice(d.indexed, n), d.cfg)
		if err != nil {
			return nil, nil, err
		}
		d.adoptConfigLocked(tail)
		shards = append(shards, tail)
		offsets = append(offsets, d.indexed)
	}
	offsets = append(offsets, n)
	budget := d.cfg.Budget
	if budget <= 0 {
		budget = defaultBudget
	}
	frozen := d.store.Slice(0, n)
	sx := &ShardedIndex{
		cfg:     d.cfg,
		store:   frozen,
		shards:  shards,
		offsets: offsets,
		budget:  budget,
		dim:     d.store.Dim(),
	}
	sx.initPool()
	return frozen.Rows(), sx, nil
}

// Vector returns the vector stored under id (also for tombstoned ids),
// as a read-only view into the flat store.
func (d *DynamicIndex) Vector(id int) []float32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store.Row(id)
}

// metricLocked returns the configured distance metric, usable before the
// first index exists.
func (d *DynamicIndex) metricLocked() vec.Metric {
	if len(d.shards) > 0 {
		return d.shards[0].ix.metric
	}
	// No index yet: resolve the metric from the config. familyFor needs
	// a dimension; any positive one works for metric resolution.
	dim := d.store.Dim()
	if dim == 0 {
		dim = 1
	}
	cfg := d.cfg
	if cfg.Metric == Euclidean && cfg.BucketWidth == 0 {
		cfg.BucketWidth = 1 // metric resolution only; not used for hashing
	}
	fam, err := familyFor(cfg, dim)
	if err != nil {
		// Unknown metric: surface loudly at query time.
		panic(err)
	}
	return fam.Metric()
}
