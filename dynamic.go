package lccs

import (
	"errors"
	"sync"
)

// DynamicIndex wraps Index with support for online inserts and deletes.
// The CSA is a static structure (the paper's indexes are built once), so
// the classic delta-architecture is used: new vectors accumulate in an
// unindexed buffer that queries scan exactly, and when the buffer exceeds
// a threshold the main index is rebuilt over the union. Deletes are
// tombstones filtered from results.
//
// Vector ids are assignment-ordered and stable across rebuilds: the i-th
// vector ever added (counting the initial dataset) has id i, forever.
// DynamicIndex is safe for concurrent use; rebuilds block writers but not
// other readers beyond the swap.
type DynamicIndex struct {
	mu      sync.RWMutex
	cfg     Config
	data    [][]float32 // all vectors ever added, id-ordered
	indexed int         // prefix of data covered by main
	main    *Index      // may be nil when everything is buffered
	deleted map[int]bool
	// rebuildAt triggers a rebuild when the buffer reaches this size.
	rebuildAt int
}

// DefaultRebuildThreshold is the buffer size that triggers a rebuild.
const DefaultRebuildThreshold = 4096

// NewDynamicIndex builds a dynamic index over an initial dataset (which
// may be empty — pass nil — if all data arrives via Add). rebuildAt ≤ 0
// selects DefaultRebuildThreshold.
func NewDynamicIndex(data [][]float32, cfg Config, rebuildAt int) (*DynamicIndex, error) {
	if rebuildAt <= 0 {
		rebuildAt = DefaultRebuildThreshold
	}
	d := &DynamicIndex{
		cfg:       cfg,
		data:      append([][]float32(nil), data...),
		deleted:   make(map[int]bool),
		rebuildAt: rebuildAt,
	}
	if len(data) > 0 {
		main, err := NewIndex(d.data, cfg)
		if err != nil {
			return nil, err
		}
		d.main = main
		d.indexed = len(d.data)
	}
	return d, nil
}

// Add inserts a vector and returns its id. The vector is retained by
// reference.
func (d *DynamicIndex) Add(v []float32) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.data) > 0 && len(v) != len(d.data[0]) {
		return 0, errors.New("lccs: dimension mismatch")
	}
	id := len(d.data)
	d.data = append(d.data, v)
	if len(d.data)-d.indexed >= d.rebuildAt {
		if err := d.rebuildLocked(); err != nil {
			return id, err
		}
	}
	return id, nil
}

// Delete tombstones a vector id; it stops appearing in results. Deleting
// an unknown id is a no-op. The vector's storage is reclaimed only by the
// next Rebuild.
func (d *DynamicIndex) Delete(id int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= 0 && id < len(d.data) {
		d.deleted[id] = true
	}
}

// Rebuild rebuilds the main index over every live vector now.
func (d *DynamicIndex) Rebuild() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rebuildLocked()
}

func (d *DynamicIndex) rebuildLocked() error {
	if len(d.data) == 0 {
		return nil
	}
	main, err := NewIndex(d.data, d.cfg)
	if err != nil {
		return err
	}
	d.main = main
	d.indexed = len(d.data)
	return nil
}

// Len returns the number of live (non-deleted) vectors.
func (d *DynamicIndex) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data) - len(d.deleted)
}

// Buffered returns the number of vectors not yet covered by the main
// index (scanned exactly on every query).
func (d *DynamicIndex) Buffered() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data) - d.indexed
}

// Search returns the k nearest live vectors: the main index's candidates
// (at the default budget) merged with an exact scan of the buffer.
func (d *DynamicIndex) Search(q []float32, k int) []Neighbor {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if k <= 0 || len(d.data) == 0 {
		return nil
	}
	var fromMain []Neighbor
	if d.main != nil {
		// Over-fetch to survive tombstone filtering.
		fetch := k + len(d.deleted)
		fromMain = d.main.Search(q, fetch)
	}
	// Merge: main candidates plus exact buffer scan, dedup not needed
	// (id ranges are disjoint), tombstones dropped, k best kept.
	metric := d.metricLocked()
	best := make([]Neighbor, 0, k+1)
	push := func(nb Neighbor) {
		if d.deleted[nb.ID] {
			return
		}
		if len(best) == k && nb.Dist >= best[k-1].Dist {
			return
		}
		best = append(best, nb)
		for i := len(best) - 1; i > 0 && best[i].Dist < best[i-1].Dist; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	for _, nb := range fromMain {
		push(nb)
	}
	for id := d.indexed; id < len(d.data); id++ {
		push(Neighbor{ID: id, Dist: metric(d.data[id], q)})
	}
	return best
}

// Vector returns the vector stored under id (also for tombstoned ids).
func (d *DynamicIndex) Vector(id int) []float32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.data[id]
}

// metricLocked returns the distance function of the configured metric,
// usable before the first index exists.
func (d *DynamicIndex) metricLocked() func(a, b []float32) float64 {
	if d.main != nil {
		return d.main.Distance
	}
	// No index yet: resolve the metric from the config. familyFor needs
	// a dimension; any positive one works for metric resolution.
	dim := 1
	if len(d.data) > 0 {
		dim = len(d.data[0])
	}
	cfg := d.cfg
	if cfg.Metric == Euclidean && cfg.BucketWidth == 0 {
		cfg.BucketWidth = 1 // metric resolution only; not used for hashing
	}
	fam, err := familyFor(cfg, dim)
	if err != nil {
		// Unknown metric: surface loudly at query time.
		panic(err)
	}
	return fam.Metric().Distance
}
