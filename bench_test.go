// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per artifact — run `go test -bench=.` for the smoke-scale
// versions; `cmd/lccs-bench` runs the full-scale sweeps), plus the
// ablation benchmarks for the design choices called out in DESIGN.md and
// microbenchmarks of the core data structures.
package lccs

import (
	"fmt"
	"io"
	"testing"

	"lccs/internal/baseline/c2lsh"
	"lccs/internal/baseline/e2lsh"
	"lccs/internal/baseline/mplsh"
	"lccs/internal/baseline/qalsh"
	"lccs/internal/baseline/srs"
	"lccs/internal/core"
	"lccs/internal/csa"
	"lccs/internal/dataset"
	"lccs/internal/experiments"
	"lccs/internal/lshfamily"
	"lccs/internal/rng"
)

// benchOpts is the smoke-scale experiment configuration used by the
// per-figure benchmarks: one dataset, small n, quick grids. The bench
// measures the full experiment pipeline (dataset generation, ground
// truth, index builds, query sweeps).
func benchOpts() experiments.Options {
	return experiments.Options{
		N: 3000, NQ: 20, K: 10, Seed: 1,
		Datasets: []string{"sift"},
		Quick:    true,
		Out:      io.Discard,
	}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Complexities regenerates Table 1 (complexity table plus
// Theorem 5.1 λ grounding).
func BenchmarkTable1Complexities(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Datasets regenerates Table 2 (dataset statistics).
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOpts()
		opt.Datasets = dataset.PresetNames()
		if err := experiments.Run("table2", opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4QueryTimeRecallEuclidean regenerates Figure 4 (query
// time–recall curves, Euclidean, 7 methods).
func BenchmarkFig4QueryTimeRecallEuclidean(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5QueryTimeRecallAngular regenerates Figure 5 (query
// time–recall curves, Angular, 5 methods).
func BenchmarkFig5QueryTimeRecallAngular(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6IndexingTradeoffEuclidean regenerates Figure 6 (query time
// vs index size / indexing time at 50% recall, Euclidean).
func BenchmarkFig6IndexingTradeoffEuclidean(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7IndexingTradeoffAngular regenerates Figure 7 (the same
// trade-off under Angular distance).
func BenchmarkFig7IndexingTradeoffAngular(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8SensitivityToK regenerates Figure 8 (recall/ratio/query
// time vs k on Sift, both metrics).
func BenchmarkFig8SensitivityToK(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9ImpactOfM regenerates Figure 9 (impact of m for LCCS-LSH).
func BenchmarkFig9ImpactOfM(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10ImpactOfProbes regenerates Figure 10 (impact of #probes
// for MP-LCCS-LSH).
func BenchmarkFig10ImpactOfProbes(b *testing.B) { benchExperiment(b, "fig10") }

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// benchStrings builds a CSA workload of n random hash strings of length m
// over a realistic alphabet.
func benchStrings(n, m int, seed uint64) ([][]int32, [][]int32) {
	g := rng.New(seed)
	strs := make([][]int32, n)
	for i := range strs {
		s := make([]int32, m)
		for j := range s {
			s[j] = int32(g.IntN(16))
		}
		strs[i] = s
	}
	queries := make([][]int32, 64)
	for i := range queries {
		// Queries resemble data strings with a few symbols changed, so
		// LCP structure is realistic.
		q := append([]int32(nil), strs[g.IntN(n)]...)
		for c := 0; c < m/4; c++ {
			q[g.IntN(m)] = int32(g.IntN(16))
		}
		queries[i] = q
	}
	return strs, queries
}

// BenchmarkAblationCSANextLinks compares the optimized k-LCCS search
// (next-link range narrowing, Lemma 3.1/Corollary 3.2) against the simple
// method (m full binary searches, §3.2).
func BenchmarkAblationCSANextLinks(b *testing.B) {
	strs, queries := benchStrings(20000, 64, 1)
	c := csa.New(strs)
	s := c.NewSearcher()
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Search(queries[i%len(queries)], 50)
		}
	})
	b.Run("simple", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.SearchSimple(queries[i%len(queries)], 50)
		}
	})
}

// BenchmarkAblationMPSkip compares probing with the skip-unaffected-
// positions rule (§4.2) against re-searching every shift.
func BenchmarkAblationMPSkip(b *testing.B) {
	strs, queries := benchStrings(20000, 64, 2)
	c := csa.New(strs)
	s := c.NewSearcher()
	perturb := func(q []int32) ([]int32, []int) {
		pq := append([]int32(nil), q...)
		pq[10]++
		pq[11]++
		return pq, []int{10, 11}
	}
	b.Run("skip", func(b *testing.B) {
		var scratch []int
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			pq, mods := perturb(q)
			s.Begin(q)
			scratch = s.Probe(pq, mods, scratch)
			for c := 0; c < 50; c++ {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			pq, _ := perturb(q)
			s.Begin(q)
			s.ProbeFull(pq)
			for c := 0; c < 50; c++ {
				if _, ok := s.Next(); !ok {
					break
				}
			}
		}
	})
}

// BenchmarkAblationMaxGap sweeps the MAX_GAP constraint of the
// perturbation generator (the paper fixes MAX_GAP = 2).
func BenchmarkAblationMaxGap(b *testing.B) {
	g := rng.New(3)
	n, d, m := 5000, 32, 32
	data := make([][]float32, n)
	for i := range data {
		data[i] = g.GaussianVector(d)
	}
	fam := lshfamily.NewRandomProjection(d, 4)
	for _, gap := range []int{1, 2, 4, 8} {
		ix, err := core.BuildMP(data, fam, core.MPParams{
			Params: core.Params{M: m, Seed: 1},
			Probes: 2*m + 1,
			MaxGap: gap,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gap=%d", gap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Search(data[i%n], 10, 50)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks: core data structures and baselines
// ---------------------------------------------------------------------------

// BenchmarkCSABuild measures Algorithm 1 (index construction).
func BenchmarkCSABuild(b *testing.B) {
	for _, m := range []int{16, 64} {
		strs, _ := benchStrings(10000, m, 4)
		b.Run(fmt.Sprintf("n=10000,m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				csa.New(strs)
			}
		})
	}
}

// BenchmarkCSASearch measures Algorithm 2 (k-LCCS queries) across m and k.
func BenchmarkCSASearch(b *testing.B) {
	for _, m := range []int{16, 64, 128} {
		strs, queries := benchStrings(20000, m, 5)
		c := csa.New(strs)
		s := c.NewSearcher()
		for _, k := range []int{10, 100} {
			b.Run(fmt.Sprintf("m=%d,k=%d", m, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.Search(queries[i%len(queries)], k)
				}
			})
		}
	}
}

// BenchmarkHashFamilies measures η(d): the per-hash cost of each family.
func BenchmarkHashFamilies(b *testing.B) {
	g := rng.New(6)
	d := 128
	v := g.GaussianVector(d)
	bits := make([]float32, d)
	for i := range bits {
		bits[i] = float32(g.IntN(2))
	}
	cases := []struct {
		name string
		f    lshfamily.Func
		in   []float32
	}{
		{"randproj", lshfamily.NewRandomProjection(d, 4).New(g), v},
		{"crosspolytope", lshfamily.NewCrossPolytope(d).New(g), v},
		{"simhash", lshfamily.NewSimHash(d).New(g), v},
		{"bitsampling", lshfamily.NewBitSampling(d).New(g), bits},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.f.Hash(c.in)
			}
		})
	}
}

// BenchmarkMethodsQuery measures one query of every method on the same
// clustered workload at comparable candidate budgets.
func BenchmarkMethodsQuery(b *testing.B) {
	g := rng.New(7)
	n, d := 20000, 32
	centers := make([][]float32, 32)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64())
		}
		data[i] = v
	}
	fam := lshfamily.NewRandomProjection(d, 8)

	lccsIx, err := core.Build(data, fam, core.Params{M: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mpIx, err := core.BuildMP(data, fam, core.MPParams{Params: core.Params{M: 32, Seed: 1}, Probes: 65})
	if err != nil {
		b.Fatal(err)
	}
	e2, err := e2lsh.Build(data, fam, e2lsh.Params{K: 4, L: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mp, err := mplsh.Build(data, fam, mplsh.Params{K: 6, L: 8, Probes: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c2, err := c2lsh.Build(data, fam, c2lsh.Params{M: 32, Threshold: 8, Budget: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	qa, err := qalsh.Build(data, d, qalsh.Params{M: 32, Threshold: 8, W: 4, Budget: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sr, err := srs.Build(data, d, srs.Params{ProjDim: 6, Budget: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("LCCS-LSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lccsIx.Search(data[i%n], 10, 100)
		}
	})
	b.Run("MP-LCCS-LSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mpIx.Search(data[i%n], 10, 100)
		}
	})
	b.Run("E2LSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e2.Search(data[i%n], 10)
		}
	})
	b.Run("Multi-Probe-LSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mp.Search(data[i%n], 10)
		}
	})
	b.Run("C2LSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c2.Search(data[i%n], 10)
		}
	})
	b.Run("QALSH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qa.Search(data[i%n], 10)
		}
	})
	b.Run("SRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sr.Search(data[i%n], 10)
		}
	})
}

// shardBenchData builds the 100k-vector clustered workload shared by the
// sharded-build and sharded-search benchmarks.
func shardBenchData(n, d int) [][]float32 {
	g := rng.New(9)
	centers := make([][]float32, 64)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64())
		}
		data[i] = v
	}
	return data
}

// BenchmarkShardedBuild measures parallel sharded construction against
// the single-index build on 100k vectors. The m circular sorts dominate
// indexing time; S shards sort S independent problems of size n/S in
// parallel (and each shard's working set is S× smaller, keeping the
// comparison-heavy sorts in cache), so on a multi-core machine the
// shards=4/shards=8 variants should build well over 1.5× faster than
// shards=1. Compare with
//
//	go test -bench BenchmarkShardedBuild -benchtime 3x
//
// or run `lccs-bench -exp shard`, which reports the speedup directly on
// a similar (not byte-identical) clustered workload.
func BenchmarkShardedBuild(b *testing.B) {
	const n, d, m = 100_000, 16, 32
	data := shardBenchData(n, d)
	cfg := Config{Metric: Euclidean, M: m, BucketWidth: 4, Seed: 1}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("n=%d,shards=%d", n, shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewShardedIndex(data, cfg, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSearch measures the fan-out/merge query path against
// the single-index query path on the same index contents.
func BenchmarkShardedSearch(b *testing.B) {
	const n, d, m = 100_000, 16, 32
	data := shardBenchData(n, d)
	cfg := Config{Metric: Euclidean, M: m, BucketWidth: 4, Seed: 1}
	single, err := NewIndex(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			single.Search(data[i%n], 10)
		}
	})
	for _, shards := range []int{4, 8} {
		sx, err := NewShardedIndex(data, cfg, shards)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sx.Search(data[i%n], 10)
			}
		})
	}
}

// BenchmarkPublicAPI measures the facade round trip.
func BenchmarkPublicAPI(b *testing.B) {
	g := rng.New(8)
	data := make([][]float32, 5000)
	for i := range data {
		data[i] = g.GaussianVector(32)
	}
	ix, err := NewIndex(data, Config{Metric: Euclidean, M: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(data[i%len(data)], 10)
	}
}

// BenchmarkDynamicChurn measures the full mutation lifecycle per
// iteration: one insert, one delete of a random live id, and one
// search against a DynamicIndex whose background delta builds (and
// their buffer compactions) run as a side effect of the churn. This is
// the smoke-scale cousin of `lccs-bench -exp churn`.
func BenchmarkDynamicChurn(b *testing.B) {
	g := rng.New(9)
	data := make([][]float32, 4000)
	for i := range data {
		data[i] = g.GaussianVector(16)
	}
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 1}, 512)
	if err != nil {
		b.Fatal(err)
	}
	live := make([]int, len(data))
	for i := range live {
		live[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := d.Add(data[i%len(data)])
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, id)
		victim := g.IntN(len(live))
		d.Delete(live[victim])
		live[victim] = live[len(live)-1]
		live = live[:len(live)-1]
		if _, err := d.Search(data[i%len(data)], 10); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d.WaitRebuild()
}

// BenchmarkDynamicCompaction measures what an explicit Rebuild costs
// after heavy deletion: per iteration, tombstone a third of the index
// and compact it away.
func BenchmarkDynamicCompaction(b *testing.B) {
	g := rng.New(10)
	data := make([][]float32, 6000)
	for i := range data {
		data[i] = g.GaussianVector(16)
	}
	d, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 1}, 100000)
	if err != nil {
		b.Fatal(err)
	}
	live := make([]int, len(data))
	for i := range live {
		live[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Refill what the previous iteration deleted, then tombstone a
		// third of the live set.
		for len(live) < len(data) {
			id, err := d.Add(g.GaussianVector(16))
			if err != nil {
				b.Fatal(err)
			}
			live = append(live, id)
		}
		for _, id := range live[:len(data)/3] {
			d.Delete(id)
		}
		live = append(live[:0:0], live[len(data)/3:]...)
		b.StartTimer()
		if err := d.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}
