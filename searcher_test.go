package lccs

import (
	"errors"
	"path/filepath"
	"sort"
	"testing"
)

// searcherFixtures builds the three facades over identical seeded data
// with one fully resolved configuration, so their hashing is
// seed-equivalent.
func searcherFixtures(t *testing.T, data [][]float32, cfg Config) map[string]Searcher {
	t.Helper()
	ix, err := NewIndex(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := NewShardedIndex(data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamicIndex(data, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Searcher{"Index": ix, "ShardedIndex": sx, "DynamicIndex": dyn}
}

// TestSearcherConformanceIdenticalResults: at an exhaustive candidate
// budget every facade verifies every vector, so Index, ShardedIndex,
// and DynamicIndex must return identical (id, distance) lists on
// identical seeded data — the Searcher interface's core contract.
func TestSearcherConformanceIdenticalResults(t *testing.T) {
	data, g := testData(91, 600, 10, 6, 0.5)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 17}
	facades := searcherFixtures(t, data, cfg)

	const k = 8
	exhaustive := 3 * len(data) // covers every shard even after ⌈λ/S⌉ splitting
	for qi := 0; qi < 12; qi++ {
		q := g.GaussianVector(10)
		want := must(facades["Index"].SearchBudget(q, k, exhaustive))
		for name, s := range facades {
			got := must(s.SearchBudget(q, k, exhaustive))
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d results, want %d", name, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %d pos %d: %+v, want %+v", name, qi, i, got[i], want[i])
				}
			}
		}
	}

	// Batch answers must equal per-query answers on every facade.
	queries := make([][]float32, 6)
	for i := range queries {
		queries[i] = g.GaussianVector(10)
	}
	for name, s := range facades {
		rows := must(s.SearchBatchBudget(queries, k, exhaustive))
		for i, q := range queries {
			seq := must(s.SearchBudget(q, k, exhaustive))
			if len(rows[i]) != len(seq) {
				t.Fatalf("%s batch row %d: lengths differ", name, i)
			}
			for j := range seq {
				if rows[i][j] != seq[j] {
					t.Fatalf("%s batch row %d pos %d: %+v vs %+v", name, i, j, rows[i][j], seq[j])
				}
			}
		}
	}
}

// TestSearcherConformanceTombstoneFiltering extends the conformance
// contract to the deletion lifecycle: with tombstones in place, the
// DynamicIndex and the ShardedIndex snapshot derived from it must
// agree with each other at an exhaustive budget AND with a brute-force
// scan over only the live vectors — deleted ids appear nowhere, live
// ids keep their stable values.
func TestSearcherConformanceTombstoneFiltering(t *testing.T) {
	data, g := testData(95, 500, 10, 5, 0.5)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 23}
	dyn, err := NewDynamicIndex(data, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{}
	for _, id := range []int{0, 13, 14, 99, 100, 101, 250, 499} {
		if !dyn.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
		dead[id] = true
	}
	_, snap, err := dyn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	facades := map[string]Searcher{"DynamicIndex": dyn, "Snapshot": snap}

	const k = 8
	exhaustive := 3 * len(data)
	for qi := 0; qi < 12; qi++ {
		q := g.GaussianVector(10)
		// Brute-force reference over live vectors only.
		type ref struct {
			id   int
			dist float64
		}
		var refs []ref
		for id, v := range data {
			if !dead[id] {
				refs = append(refs, ref{id, dyn.Distance(q, v)})
			}
		}
		sort.Slice(refs, func(i, j int) bool {
			if refs[i].dist != refs[j].dist {
				return refs[i].dist < refs[j].dist
			}
			return refs[i].id < refs[j].id
		})
		for name, s := range facades {
			got := must(s.SearchBudget(q, k, exhaustive))
			if len(got) != k {
				t.Fatalf("%s query %d: %d results, want %d", name, qi, len(got), k)
			}
			for i, nb := range got {
				if dead[nb.ID] {
					t.Fatalf("%s query %d: deleted id %d surfaced", name, qi, nb.ID)
				}
				if nb.ID != refs[i].id || nb.Dist != refs[i].dist {
					t.Fatalf("%s query %d pos %d: got (%d, %v), brute force says (%d, %v)",
						name, qi, i, nb.ID, nb.Dist, refs[i].id, refs[i].dist)
				}
			}
		}
	}
}

// TestFacadeValidationConformance: all three facades answer the same
// invalid input with the same typed error — never a silent empty
// result.
func TestFacadeValidationConformance(t *testing.T) {
	data, _ := testData(92, 120, 8, 4, 0.5)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 18}
	facades := searcherFixtures(t, data, cfg)

	valid := data[0]
	cases := []struct {
		name    string
		q       []float32
		k, l    int
		wantErr error
	}{
		{"k=0", valid, 0, 50, ErrInvalidK},
		{"k<0", valid, -3, 50, ErrInvalidK},
		{"lambda=0", valid, 5, 0, ErrInvalidBudget},
		{"lambda<0", valid, 5, -1, ErrInvalidBudget},
		{"nil query", nil, 5, 50, ErrEmptyQuery},
		{"empty query", []float32{}, 5, 50, ErrEmptyQuery},
		{"dim mismatch", []float32{1, 2, 3}, 5, 50, ErrDimensionMismatch},
	}
	for name, s := range facades {
		for _, c := range cases {
			if _, err := s.SearchBudget(c.q, c.k, c.l); !errors.Is(err, c.wantErr) {
				t.Errorf("%s/SearchBudget/%s: err=%v, want %v", name, c.name, err, c.wantErr)
			}
			if _, err := s.SearchBatchBudget([][]float32{c.q}, c.k, c.l); !errors.Is(err, c.wantErr) {
				t.Errorf("%s/SearchBatchBudget/%s: err=%v, want %v", name, c.name, err, c.wantErr)
			}
		}
		// Even an empty batch enforces the k/λ contract.
		if _, err := s.SearchBatchBudget(nil, 0, 50); !errors.Is(err, ErrInvalidK) {
			t.Errorf("%s/SearchBatchBudget empty k=0: err=%v, want ErrInvalidK", name, err)
		}
		if _, err := s.SearchBatchBudget([][]float32{}, 5, -1); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("%s/SearchBatchBudget empty lambda<0: err=%v, want ErrInvalidBudget", name, err)
		}
		// Search (default budget) applies the same k/query checks.
		if _, err := s.Search(valid, 0); !errors.Is(err, ErrInvalidK) {
			t.Errorf("%s/Search k=0: err=%v, want ErrInvalidK", name, err)
		}
		if _, err := s.Search(nil, 3); !errors.Is(err, ErrEmptyQuery) {
			t.Errorf("%s/Search nil query: err=%v, want ErrEmptyQuery", name, err)
		}
		// Valid input still succeeds after all that.
		if res := must(s.Search(valid, 3)); len(res) != 3 {
			t.Errorf("%s: valid search returned %d results", name, len(res))
		}
	}
}

func TestParseMetric(t *testing.T) {
	good := map[string]MetricKind{
		"euclidean": Euclidean, "l2": Euclidean, "L2": Euclidean,
		"angular": Angular, "cosine": Angular,
		"hamming": Hamming, " hamming ": Hamming,
		"jaccard": Jaccard, "minhash": Jaccard, "Jaccard": Jaccard,
	}
	for in, want := range good {
		got, err := ParseMetric(in)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "chebyshev", "l3"} {
		if _, err := ParseMetric(in); err == nil {
			t.Errorf("ParseMetric(%q) should fail", in)
		}
	}
}

// TestDynamicSnapshotRoundTrip: a snapshot taken with buffered inserts
// persists through the LCCSPKG2 container and serves identical results
// after a reload — the serve daemon's shutdown path.
func TestDynamicSnapshotRoundTrip(t *testing.T) {
	data, g := testData(93, 300, 8, 4, 0.5)
	dyn, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 19}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Cross the threshold once (background shard) and leave a tail in
	// the buffer, so the snapshot exercises both paths.
	var lastID int
	for i := 0; i < 130; i++ {
		if lastID, err = dyn.Add(g.GaussianVector(8)); err != nil {
			t.Fatal(err)
		}
	}
	dyn.WaitRebuild()
	if dyn.Buffered() == 0 {
		t.Fatal("test setup: expected a non-empty buffer")
	}

	vectors, sx, err := dyn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) != 430 || sx.Len() != 430 {
		t.Fatalf("snapshot covers %d/%d vectors, want 430", len(vectors), sx.Len())
	}
	path := filepath.Join(t.TempDir(), "snap.lccs")
	if err := sx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(path, vectors)
	if err != nil {
		t.Fatal(err)
	}
	// The buffered insert is preserved: it is findable at distance 0
	// under its stable id, before and after the round trip.
	for _, s := range []Searcher{sx, loaded} {
		res := must(s.SearchBudget(vectors[lastID], 1, 3*len(vectors)))
		if len(res) != 1 || res[0].ID != lastID || res[0].Dist != 0 {
			t.Fatalf("buffered insert lost after snapshot: %+v", res)
		}
	}
	// Full parity between the in-memory snapshot and the reloaded one.
	for qi := 0; qi < 10; qi++ {
		q := g.GaussianVector(8)
		a := must(sx.SearchBudget(q, 5, 60))
		b := must(loaded.SearchBudget(q, 5, 60))
		if len(a) != len(b) {
			t.Fatalf("query %d: lengths differ", qi)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d pos %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
	// The snapshot did not disturb the live index.
	res := must(dyn.Search(vectors[lastID], 1))
	if len(res) != 1 || res[0].ID != lastID {
		t.Fatalf("live index broken after snapshot: %+v", res)
	}
}

// TestDynamicFromShardedStaysWritable: the warm-restart path — a
// snapshot reloaded with LoadSharded and wrapped back into a
// DynamicIndex keeps serving inserts, so writability survives any
// number of snapshot/restart cycles.
func TestDynamicFromShardedStaysWritable(t *testing.T) {
	data, g := testData(94, 200, 8, 4, 0.5)
	dyn, err := NewDynamicIndex(data, Config{Metric: Euclidean, M: 16, Seed: 21}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	firstInsert, err := dyn.Add(g.GaussianVector(8))
	if err != nil {
		t.Fatal(err)
	}
	vectors, snap, err := dyn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.lccs")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSharded(path, vectors)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := NewDynamicIndexFromSharded(loaded, vectors, 50)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Len() != 201 || warm.Buffered() != 0 {
		t.Fatalf("Len=%d Buffered=%d", warm.Len(), warm.Buffered())
	}
	// The pre-restart insert is still served under its stable id.
	res := must(warm.SearchBudget(vectors[firstInsert], 1, 4*len(vectors)))
	if len(res) != 1 || res[0].ID != firstInsert || res[0].Dist != 0 {
		t.Fatalf("pre-restart insert lost: %+v", res)
	}
	// New inserts keep working, ids continue from the snapshot, and the
	// rebuild threshold still triggers background shard builds.
	v := g.GaussianVector(8)
	id, err := warm.Add(v)
	if err != nil {
		t.Fatal(err)
	}
	if id != 201 {
		t.Fatalf("post-restart id = %d, want 201", id)
	}
	res = must(warm.Search(v, 1))
	if len(res) != 1 || res[0].ID != id || res[0].Dist != 0 {
		t.Fatalf("post-restart insert not found: %+v", res)
	}
	for i := 0; i < 60; i++ {
		if _, err := warm.Add(g.GaussianVector(8)); err != nil {
			t.Fatal(err)
		}
	}
	warm.WaitRebuild()
	if warm.Buffered() >= 50 {
		t.Fatalf("Buffered=%d, background build never triggered", warm.Buffered())
	}

	// A mismatched data slice is rejected.
	if _, err := NewDynamicIndexFromSharded(loaded, vectors[:10], 0); err == nil {
		t.Fatal("short data slice should fail")
	}
}

// TestSnapshotEmptyDynamic: an empty dynamic index has nothing to
// persist and says so.
func TestSnapshotEmptyDynamic(t *testing.T) {
	dyn, err := NewDynamicIndex(nil, Config{Metric: Euclidean, M: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dyn.Snapshot(); err == nil {
		t.Fatal("empty snapshot should fail")
	}
}
