package lccs_test

import (
	"fmt"

	"lccs"
)

// grid builds a small deterministic dataset: points on a jittered integer
// grid, so nearest neighbors are unambiguous.
func grid(n, d int) [][]float32 {
	data := make([][]float32, n)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float32 {
		state = state*6364136223846793005 + 1442695040888963407
		return float32(state>>40) / float32(1<<24)
	}
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(10*((i+j)%7)) + next()
		}
		data[i] = v
	}
	return data
}

func ExampleNewIndex() {
	data := grid(500, 16)
	ix, err := lccs.NewIndex(data, lccs.Config{
		Metric:      lccs.Euclidean,
		M:           32,
		BucketWidth: 8,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	// Querying with an indexed vector returns it at distance 0.
	res, err := ix.Search(data[42], 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res[0].ID, res[0].Dist == 0)
	// Output: 42 true
}

func ExampleIndex_SearchBudget() {
	data := grid(500, 16)
	ix, err := lccs.NewIndex(data, lccs.Config{
		Metric:      lccs.Euclidean,
		M:           32,
		BucketWidth: 8,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	// A larger candidate budget λ verifies more of the CSA's frontier:
	// results can only improve.
	loose, err := ix.SearchBudget(data[7], 5, 10)
	if err != nil {
		panic(err)
	}
	tight, err := ix.SearchBudget(data[7], 5, 200)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(loose), len(tight), tight[0].Dist == 0)
	// Output: 5 5 true
}

func ExampleIndex_SearchBatch() {
	data := grid(300, 8)
	ix, err := lccs.NewIndex(data, lccs.Config{
		Metric:      lccs.Euclidean,
		M:           16,
		BucketWidth: 8,
		Seed:        2,
	})
	if err != nil {
		panic(err)
	}
	results, err := ix.SearchBatch(data[:3], 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), results[0][0].ID, results[1][0].ID, results[2][0].ID)
	// Output: 3 0 1 2
}
