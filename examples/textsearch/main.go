// Text-embedding search: the workload the paper's GloVe experiments model.
// Synthetic 100-d word embeddings (unit-norm, topic-clustered) are indexed
// under Angular distance with the cross-polytope family, and the example
// contrasts single-probe LCCS-LSH with multi-probe MP-LCCS-LSH on the same
// hash-string length — the paper's reason for MP: equal recall from a
// smaller index.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"time"

	"lccs"
)

const (
	vocab  = 30000
	dim    = 100
	topics = 120
	nq     = 25
	k      = 10
)

func main() {
	r := rand.New(rand.NewPCG(21, 4))
	words, names := makeEmbeddings(r)

	queries := make([][]float32, nq)
	for i := range queries {
		// A query is a word vector nudged within its topic cone.
		src := words[r.IntN(vocab)]
		q := make([]float32, dim)
		for j := range q {
			// Per-coordinate noise of 0.02 gives a ~0.2 rad nudge in
			// 100-d (noise norm ≈ 0.02·√d).
			q[j] = src[j] + float32(r.NormFloat64()*0.02)
		}
		normalize(q)
		queries[i] = q
	}

	// Exact truth, computed once up front so the timed loop below
	// measures only index queries.
	truth := make([]map[int]bool, nq)
	for i, q := range queries {
		truth[i] = exactSet(words, q)
	}

	for _, cfg := range []struct {
		label  string
		probes int
		m      int
	}{
		{"LCCS-LSH (single-probe), m=64", 1, 64},
		{"MP-LCCS-LSH (65 probes),  m=16", 65, 16},
	} {
		ix, err := lccs.NewIndex(words, lccs.Config{
			Metric: lccs.Angular,
			M:      cfg.m,
			Probes: cfg.probes,
			Seed:   5,
		})
		if err != nil {
			log.Fatal(err)
		}
		const lambda = 400
		results := make([][]lccs.Neighbor, nq)
		start := time.Now()
		for i, q := range queries {
			res, err := ix.SearchBudget(q, k, lambda)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}
		elapsed := time.Since(start)
		var recall float64
		for i, got := range results {
			var hits float64
			for _, g := range got {
				if truth[i][g.ID] {
					hits++
				}
			}
			recall += hits / k
		}
		fmt.Printf("%-32s index=%5.1fMB recall@%d=%5.1f%% query=%.2fms\n",
			cfg.label, float64(ix.Bytes())/(1<<20), k, 100*recall/float64(nq), elapsed.Seconds()*1000/nq)
	}

	// Show one concrete result list.
	ix, err := lccs.NewIndex(words, lccs.Config{Metric: lccs.Angular, M: 64, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	fmt.Println("\nnearest words to query 0:")
	top, err := ix.SearchBudget(q, 5, 100)
	if err != nil {
		log.Fatal(err)
	}
	for rank, nb := range top {
		fmt.Printf("  #%d %-12s angle=%.3f rad\n", rank+1, names[nb.ID], nb.Dist)
	}
}

// makeEmbeddings builds a topic-clustered unit-norm vocabulary with
// synthetic word names ("topic17_word203").
func makeEmbeddings(r *rand.Rand) ([][]float32, []string) {
	topicDirs := make([][]float32, topics)
	for i := range topicDirs {
		t := make([]float32, dim)
		for j := range t {
			t[j] = float32(r.NormFloat64())
		}
		normalize(t)
		topicDirs[i] = t
	}
	words := make([][]float32, vocab)
	names := make([]string, vocab)
	for i := range words {
		topic := r.IntN(topics)
		v := make([]float32, dim)
		for j := range v {
			// 0.06 per coordinate ≈ 0.6 total noise norm against the
			// unit topic direction: same-topic words sit ~0.55 rad
			// apart, other topics near π/2.
			v[j] = topicDirs[topic][j] + float32(r.NormFloat64()*0.06)
		}
		normalize(v)
		words[i] = v
		names[i] = fmt.Sprintf("topic%d_word%d", topic, i)
	}
	return words, names
}

// exactSet returns the id set of the exact k nearest words by angle.
func exactSet(words [][]float32, q []float32) map[int]bool {
	type pair struct {
		id   int
		dist float64
	}
	best := make([]pair, 0, k+1)
	for id, w := range words {
		d := angle(w, q)
		if len(best) < k || d < best[len(best)-1].dist {
			best = append(best, pair{id, d})
			for i := len(best) - 1; i > 0 && best[i].dist < best[i-1].dist; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	set := make(map[int]bool, k)
	for _, b := range best {
		set[b.id] = true
	}
	return set
}

// angle is the angular distance between two unit vectors.
func angle(a, b []float32) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	return math.Acos(dot)
}

func normalize(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	n := math.Sqrt(s)
	if n == 0 {
		return
	}
	for j := range v {
		v[j] = float32(float64(v[j]) / n)
	}
}
