// Quickstart: build an LCCS-LSH index over random vectors and run a
// nearest-neighbor query — the smallest possible end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"lccs"
)

func main() {
	const (
		n   = 10000 // data points
		dim = 64    // dimensionality
	)
	r := rand.New(rand.NewPCG(1, 2))

	// Some clustered data: 50 centers with Gaussian scatter.
	centers := make([][]float32, 50)
	for i := range centers {
		centers[i] = randomVector(r, dim, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(r.NormFloat64())
		}
		data[i] = v
	}

	// Build the index. M is the only capacity parameter: the length of
	// each point's hash string.
	ix, err := lccs.NewIndex(data, lccs.Config{
		Metric: lccs.Euclidean,
		M:      64,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors (%d-d) in %v, index size %.1f MB\n",
		ix.Len(), dim, ix.BuildTime().Round(1e6), float64(ix.Bytes())/(1<<20))

	// Query with a perturbed data point; its source should come back
	// first.
	q := make([]float32, dim)
	for j := range q {
		q[j] = data[1234][j] + 0.1*float32(r.NormFloat64())
	}
	res, err := ix.Search(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range res {
		fmt.Printf("id=%-6d dist=%.3f\n", nb.ID, nb.Dist)
	}
}

func randomVector(r *rand.Rand, dim int, scale float64) []float32 {
	v := make([]float32, dim)
	for j := range v {
		v[j] = float32((r.Float64()*2 - 1) * scale)
	}
	return v
}
