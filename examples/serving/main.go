// Serving: put an index behind the HTTP API in-process — build a
// DynamicIndex, mount the internal/server handler on a loopback
// listener, search and insert over HTTP, and watch the result cache
// and insert-generation invalidation at work. The standalone daemon
// (cmd/lccs-serve) wraps exactly this stack with flags, signal
// handling, and snapshotting.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"

	"lccs"
	"lccs/internal/server"
)

const (
	n   = 20000
	dim = 32
)

func main() {
	r := rand.New(rand.NewPCG(11, 23))
	data := make([][]float32, n)
	for i := range data {
		data[i] = randomPoint(r)
	}

	// A dynamic backend so /v1/insert works.
	dyn, err := lccs.NewDynamicIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 32, Seed: 7}, 4096)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{Backend: dyn, CacheSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d vectors on %s\n", dyn.Len(), base)

	// Search twice: the repeat is served from the result cache.
	q := data[4242]
	for i := 0; i < 2; i++ {
		var res struct {
			Neighbors []struct {
				ID   int     `json:"id"`
				Dist float64 `json:"dist"`
			} `json:"neighbors"`
			Cached bool `json:"cached"`
		}
		post(base+"/v1/search", map[string]any{"query": q, "k": 3}, &res)
		fmt.Printf("search %d: top id=%d dist=%.3f cached=%v\n",
			i+1, res.Neighbors[0].ID, res.Neighbors[0].Dist, res.Cached)
	}

	// Insert a novel vector; the write invalidates cached results and
	// the vector is immediately searchable.
	novel := randomPoint(r)
	var ins struct {
		IDs []int `json:"ids"`
	}
	post(base+"/v1/insert", map[string]any{"vectors": [][]float32{novel}}, &ins)
	var res struct {
		Neighbors []struct {
			ID   int     `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"neighbors"`
		Cached bool `json:"cached"`
	}
	post(base+"/v1/search", map[string]any{"query": novel, "k": 1}, &res)
	fmt.Printf("inserted id=%d, found at dist=%.0f (cached=%v)\n",
		ins.IDs[0], res.Neighbors[0].Dist, res.Cached)

	// Operational state, straight from the stats endpoint.
	st := srv.StatsSnapshot()
	fmt.Printf("stats: %d searches, cache hit rate %.0f%%, p99=%.2fms\n",
		st.Latency.Count, 100*st.Cache.HitRate, st.Latency.P99Ms)
}

func post(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func randomPoint(r *rand.Rand) []float32 {
	v := make([]float32, dim)
	for j := range v {
		v[j] = float32(r.NormFloat64() * 4)
	}
	return v
}
