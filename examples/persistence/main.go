// Persistence and online updates: save an index to disk so the next start
// skips the sort-dominated build (Algorithm 1), then serve inserts and
// deletes through the dynamic wrapper while queries keep running.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"lccs"
)

const (
	n   = 30000
	dim = 96
)

func main() {
	r := rand.New(rand.NewPCG(5, 17))
	data := make([][]float32, n)
	for i := range data {
		data[i] = randomPoint(r)
	}

	dir, err := os.MkdirTemp("", "lccs-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.lccs")

	cfg := lccs.Config{Metric: lccs.Euclidean, M: 96, Seed: 9}

	// Cold build.
	start := time.Now()
	ix, err := lccs.NewIndex(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	if err := ix.Save(path); err != nil {
		log.Fatal(err)
	}

	// Warm start from disk.
	start = time.Now()
	warm, err := lccs.Load(path, data)
	if err != nil {
		log.Fatal(err)
	}
	loadTime := time.Since(start)
	fmt.Printf("cold build: %v    warm load: %v (%.0fx faster)\n",
		buildTime.Round(time.Millisecond), loadTime.Round(time.Millisecond),
		buildTime.Seconds()/loadTime.Seconds())

	q := data[777]
	a, err := ix.Search(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	b, err := warm.Search(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identical results after reload: %v\n", a[0] == b[0] && a[1] == b[1] && a[2] == b[2])

	// Online updates through the dynamic wrapper.
	dyn, err := lccs.NewDynamicIndex(data, cfg, 10000)
	if err != nil {
		log.Fatal(err)
	}
	novel := randomPoint(r)
	id, err := dyn.Add(novel)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dyn.Search(novel, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted vector %d found immediately: %v (buffered: %d)\n",
		id, res[0].ID == id && res[0].Dist == 0, dyn.Buffered())

	dyn.Delete(id)
	res, err = dyn.Search(novel, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete it is gone: %v\n", len(res) == 0 || res[0].ID != id)
}

func randomPoint(r *rand.Rand) []float32 {
	v := make([]float32, dim)
	for j := range v {
		v[j] = float32(r.NormFloat64() * 5)
	}
	return v
}
