// Binary-fingerprint search under Hamming distance: near-duplicate
// detection over 256-bit document fingerprints using the bit-sampling LSH
// family — the third metric the framework supports out of the box, and the
// regime the paper's Table 1 discussion highlights (η(d) = O(1): hashing
// is a single coordinate lookup, so LCCS-LSH's large-m settings are
// almost free).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"lccs"
)

const (
	n    = 50000
	bits = 256
)

func main() {
	r := rand.New(rand.NewPCG(3, 14))

	// Fingerprints: random documents plus planted near-duplicate pairs.
	data := make([][]float32, n)
	for i := range data {
		data[i] = randomFingerprint(r)
	}
	// Plant near-duplicates of document 100 at Hamming distances 4, 12,
	// and 40.
	for i, flips := range map[int]int{200: 4, 300: 12, 400: 40} {
		data[i] = flip(r, data[100], flips)
	}

	ix, err := lccs.NewIndex(data, lccs.Config{
		Metric: lccs.Hamming,
		M:      256, // hashing costs O(1) per function: large m is cheap
		Seed:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d fingerprints of %d bits (m=%d, %.1f MB)\n",
		ix.Len(), bits, ix.M(), float64(ix.Bytes())/(1<<20))

	fmt.Println("\nnear-duplicates of document 100:")
	res, err := ix.SearchBudget(data[100], 5, 200)
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range res {
		fmt.Printf("  id=%-6d hamming=%3.0f%s\n", nb.ID, nb.Dist, marker(nb.ID))
	}
}

func randomFingerprint(r *rand.Rand) []float32 {
	v := make([]float32, bits)
	for j := range v {
		v[j] = float32(r.IntN(2))
	}
	return v
}

func flip(r *rand.Rand, src []float32, count int) []float32 {
	v := append([]float32(nil), src...)
	for _, j := range r.Perm(bits)[:count] {
		v[j] = 1 - v[j]
	}
	return v
}

func marker(id int) string {
	switch id {
	case 100:
		return "  <- the document itself"
	case 200, 300, 400:
		return "  <- planted near-duplicate"
	}
	return ""
}
