// Image-descriptor search: the workload the paper's Sift/Gist experiments
// model. Synthetic 128-d SIFT-like descriptors (non-negative quantized
// features) are indexed under Euclidean distance; the example measures
// recall against an exact scan and the speedup LCCS-LSH buys, and shows
// the recall/time effect of the per-query candidate budget λ.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"lccs"
)

const (
	n   = 20000
	dim = 128
	nq  = 30
	k   = 10
)

func main() {
	r := rand.New(rand.NewPCG(7, 9))
	data := makeDescriptors(r, n)
	queries := make([][]float32, nq)
	for i := range queries {
		// Queries are noisy views of database images.
		src := data[r.IntN(n)]
		q := make([]float32, dim)
		for j := range q {
			q[j] = src[j] + float32(r.NormFloat64()*4)
			if q[j] < 0 {
				q[j] = 0
			}
		}
		queries[i] = q
	}

	ix, err := lccs.NewIndex(data, lccs.Config{Metric: lccs.Euclidean, M: 128, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d descriptors, m=%d, %.1f MB, built in %v\n",
		ix.Len(), ix.M(), float64(ix.Bytes())/(1<<20), ix.BuildTime().Round(time.Millisecond))

	// Exact baseline for recall and speed comparison.
	truth := make([][]lccs.Neighbor, nq)
	scanStart := time.Now()
	for i, q := range queries {
		truth[i] = exactKNN(data, q, k, ix)
	}
	scanTime := time.Since(scanStart)

	fmt.Printf("\n%8s %10s %10s %10s\n", "λ", "recall", "query", "speedup")
	for _, lambda := range []int{10, 50, 200, 800} {
		start := time.Now()
		var recall float64
		for i, q := range queries {
			got, err := ix.SearchBudget(q, k, lambda)
			if err != nil {
				log.Fatal(err)
			}
			recall += overlap(got, truth[i]) / k
		}
		lshTime := time.Since(start)
		fmt.Printf("%8d %9.1f%% %8.2fms %9.1fx\n",
			lambda,
			100*recall/nq,
			lshTime.Seconds()*1000/nq,
			scanTime.Seconds()/lshTime.Seconds())
	}
}

func makeDescriptors(r *rand.Rand, n int) [][]float32 {
	// 200 visual words; descriptors scatter around them (SIFT values are
	// non-negative bytes).
	words := make([][]float32, 200)
	for i := range words {
		w := make([]float32, dim)
		for j := range w {
			w[j] = float32(r.Float64() * 128)
		}
		words[i] = w
	}
	data := make([][]float32, n)
	for i := range data {
		w := words[r.IntN(len(words))]
		v := make([]float32, dim)
		for j := range v {
			x := w[j] + float32(r.NormFloat64()*16)
			if x < 0 {
				x = 0
			}
			v[j] = float32(int32(x))
		}
		data[i] = v
	}
	return data
}

func exactKNN(data [][]float32, q []float32, k int, ix *lccs.Index) []lccs.Neighbor {
	best := make([]lccs.Neighbor, 0, k+1)
	for id, v := range data {
		d := ix.Distance(v, q)
		if len(best) < k || d < best[len(best)-1].Dist {
			best = append(best, lccs.Neighbor{ID: id, Dist: d})
			for i := len(best) - 1; i > 0 && best[i].Dist < best[i-1].Dist; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	return best
}

func overlap(got, want []lccs.Neighbor) float64 {
	set := map[int]bool{}
	for _, w := range want {
		set[w.ID] = true
	}
	var hits float64
	for _, g := range got {
		if set[g.ID] {
			hits++
		}
	}
	return hits
}
