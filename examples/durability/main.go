// Command durability walks the durable-index lifecycle end to end:
// open a data directory, ingest through the write-ahead log, crash
// without any shutdown path, recover, verify nothing acknowledged was
// lost, then checkpoint and show the log truncating.
//
//	go run ./examples/durability
package main

import (
	"fmt"
	"log"
	"os"

	"lccs"
)

func main() {
	dir, err := os.MkdirTemp("", "lccs-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The Config seeds a fresh directory; after the first checkpoint
	// the snapshot container carries the resolved configuration.
	cfg := lccs.DurableConfig{
		Config: lccs.Config{Metric: lccs.Euclidean, M: 16, BucketWidth: 4},
		Sync:   lccs.SyncAlways, // every acked write is fsynced (group-committed)
	}

	// ---- first process: ingest, then "crash" ----
	di, err := lccs.OpenDurable(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := di.AddBatch([][]float32{
		{0, 0}, {1, 0}, {0, 1}, {5, 5}, {9, 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inserted ids:", ids)
	if ok, err := di.DeleteDurable(3); !ok || err != nil {
		log.Fatalf("delete: %v %v", ok, err)
	}
	fmt.Println("deleted id 3 (durably)")
	st := di.WALStats()
	fmt.Printf("WAL before crash: depth=%d records, %d bytes, %d fsyncs\n",
		st.Depth, st.Bytes, st.Fsyncs)
	// Crash: no Checkpoint, no Close. Everything acknowledged is in
	// the log; the in-memory index simply vanishes.
	di = nil

	// ---- second process: recover ----
	di2, err := lccs.OpenDurable(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer di2.Close()
	rec := di2.Recovery()
	fmt.Printf("recovered: %d records replayed from %d segments in %v\n",
		rec.Records, rec.Segments, rec.Duration)
	fmt.Println("live vectors after recovery:", di2.Len())

	res, err := di2.Search([]float32{5, 5}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, nb := range res {
		fmt.Printf("  neighbor id=%d dist=%.2f\n", nb.ID, nb.Dist)
	}

	// The watermark survived too: a new insert never reuses id 3.
	id, err := di2.Add([]float32{2, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("next id after recovery:", id)

	// ---- checkpoint: snapshot + log truncation ----
	info, err := di2.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: generation %d, %d live vectors → %s (WAL truncated through LSN %d)\n",
		info.Generation, info.Live, info.Container, info.LSN)
	fmt.Println("WAL depth after checkpoint:", di2.WALStats().Depth)
}
