package lccs

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"lccs/internal/core"
	"lccs/internal/idmap"
	"lccs/internal/obs"
	"lccs/internal/pqueue"
	"lccs/internal/vec"
)

// ShardedIndex partitions a dataset across S shards, each an independent
// LCCS-LSH Index over a contiguous slice of the data. All shards share one
// fully resolved configuration — the same seed, hash-string length m, and
// bucket width (derived once from the full dataset) — so a sharded index
// is seed-equivalent to a single Index over the same data. The vectors
// live in one flat store shared by every shard (each shard holds a
// contiguous view), so sharding adds no per-shard copies.
//
// Sharding serves two purposes. Construction: the CSA build is dominated
// by the m circular sorts, and S shards sort S independent problems of
// size n/S in parallel, turning the sort-bound build near-linear in cores
// (each shard's working set is also S× smaller, which keeps the
// comparison-heavy sorts in cache). Queries: a search fans out across all
// shards — concurrently when cores allow — and the per-shard top-k lists
// are combined by a tournament-tree merge into the global top-k.
//
// Query cost grows mildly with S (each shard runs its own binary searches
// and verifies its own candidate floor), so prefer the smallest shard
// count that saturates the hardware: GOMAXPROCS for build-heavy or
// mixed workloads (the default), 1 for tiny datasets.
//
// A ShardedIndex is safe for concurrent queries; per-query scratch (the
// per-shard result lists and the tournament merge) is pooled, so the
// sequential SearchInto path allocates nothing at steady state.
type ShardedIndex struct {
	cfg    Config
	store  *vec.Store
	shards []*Index
	// offsets[s] is the global id of the first vector of shard s;
	// offsets[len(shards)] == n. Shard s covers data[offsets[s]:offsets[s+1]].
	offsets   []int
	budget    int
	dim       int
	buildTime time.Duration
	// Lifecycle state carried over from a DynamicIndex snapshot (or a
	// loaded LCCSPKG3 container). All three stay nil on fresh builds and
	// legacy loads, keeping the common path untouched.
	//
	// ids maps dense store slots to the stable external ids results are
	// reported in; nil means the identity (slot == id).
	ids *idmap.Map
	// dead is the tombstone set keyed by store slot: these rows are
	// indexed positionally by the shard structures but must never
	// surface in results.
	dead map[int]bool
	// shardDead[s] counts tombstones inside shard s — its per-query
	// over-fetch allowance.
	shardDead []int
	// attrs holds per-slot metadata (global slot space, shared across
	// shards); nil when no vector carries attributes.
	attrs *vec.MetaStore
	// ctxs pools shardCtx values: the per-shard result buffers and the
	// tournament tree of one fan-out query.
	ctxs sync.Pool
}

// shardCtx is the pooled per-query scratch of a shard fan-out: one
// reusable result buffer per shard, a per-shard stats slot for metered
// queries (written by each scan, summed after the fan-out joins — no
// atomics), and the merge tree.
type shardCtx struct {
	lists [][]pqueue.Neighbor
	stats []core.SearchStats
	t     pqueue.Tournament
}

// initPool installs the shardCtx pool; called once per constructed or
// loaded sharded index.
func (sx *ShardedIndex) initPool() {
	s := len(sx.shards)
	sx.ctxs.New = func() any {
		return &shardCtx{
			lists: make([][]pqueue.Neighbor, s),
			stats: make([]core.SearchStats, s),
		}
	}
}

// NewShardedIndex builds an LCCS-LSH index over data partitioned into the
// given number of shards. shards ≤ 0 selects GOMAXPROCS; the count is
// capped at len(data) so every shard is non-empty. All shard CSAs are
// built in parallel.
func NewShardedIndex(data [][]float32, cfg Config, shards int) (*ShardedIndex, error) {
	if len(data) == 0 {
		return nil, errors.New("lccs: empty dataset")
	}
	store, err := storeFromRows(data)
	if err != nil {
		return nil, err
	}
	return newShardedFromStore(store, cfg, shards)
}

// newShardedFromStore builds the sharded index over an owning flat
// store; every shard indexes a contiguous view of it.
func newShardedFromStore(store *vec.Store, cfg Config, shards int) (*ShardedIndex, error) {
	n := store.Len()
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	cfg, err := resolveConfig(store, cfg)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	sx := &ShardedIndex{
		cfg:     cfg,
		store:   store,
		shards:  make([]*Index, shards),
		offsets: shardOffsets(n, shards),
		budget:  cfg.Budget,
		dim:     store.Dim(),
	}
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sx.shards[s], errs[s] = newIndexFromStore(store.Slice(sx.offsets[s], sx.offsets[s+1]), cfg)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sx.initPool()
	sx.buildTime = time.Since(start)
	return sx, nil
}

// shardOffsets splits n items into an (shards+1)-entry offset table of
// near-equal contiguous ranges (the first n%shards ranges are one larger).
func shardOffsets(n, shards int) []int {
	offsets := make([]int, shards+1)
	base, rem := n/shards, n%shards
	for s := 0; s < shards; s++ {
		size := base
		if s < rem {
			size++
		}
		offsets[s+1] = offsets[s] + size
	}
	return offsets
}

// Search returns the k nearest neighbors of q across all shards with the
// index's default candidate budget, in ascending distance order. Ids are
// global: they index into the data slice the index was built from.
func (sx *ShardedIndex) Search(q []float32, k int) ([]Neighbor, error) {
	return sx.SearchBudget(q, k, sx.budget)
}

// SearchBudget is Search with an explicit candidate budget λ. The budget
// is divided across shards (⌈λ/S⌉ each), so each shard verifies
// ⌈λ/S⌉+k−1 candidates and the total verification work is ≈ λ+S·(k−1).
func (sx *ShardedIndex) SearchBudget(q []float32, k, lambda int) ([]Neighbor, error) {
	return sx.searchBudgetInto(q, k, lambda, true, nil, nil)
}

// SearchInto is Search appending into dst (reset to dst[:0] first): the
// zero-allocation steady-state path. The shard fan-out runs sequentially
// here — it is meant for callers that already provide their own
// concurrency (batch workers, server handlers); the merge is
// deterministic, so results are identical to Search either way.
func (sx *ShardedIndex) SearchInto(q []float32, k int, dst []Neighbor) ([]Neighbor, error) {
	return sx.searchBudgetInto(q, k, sx.budget, false, dst, nil)
}

// SearchBudgetInto is SearchBudget appending into dst; like SearchInto
// it runs the fan-out sequentially.
func (sx *ShardedIndex) SearchBudgetInto(q []float32, k, lambda int, dst []Neighbor) ([]Neighbor, error) {
	return sx.searchBudgetInto(q, k, lambda, false, dst, nil)
}

// SearchBudgetIntoTraced is SearchBudgetInto recording spans into tr:
// one shard_scan span per shard (with CSA comparison and verified-
// candidate counters) plus a tournament-merge span, all under a query
// root span. A nil tr is exactly SearchBudgetInto; a non-positive
// lambda selects the default budget.
func (sx *ShardedIndex) SearchBudgetIntoTraced(q []float32, k, lambda int, dst []Neighbor, tr *Trace) ([]Neighbor, error) {
	return sx.SearchCostInto(q, k, lambda, nil, dst, nil, tr)
}

// SearchCostInto is the unified metered query path: filtered when f is
// non-empty, cost-accounted when co is non-nil, span-traced when tr is
// non-nil, and exactly SearchBudgetInto when all three are nil. The
// shard fan-out runs sequentially (callers on this path — server
// handlers, batch workers — provide their own concurrency); a
// non-positive lambda selects the default budget.
func (sx *ShardedIndex) SearchCostInto(q []float32, k, lambda int, f *Filter, dst []Neighbor, co *Cost, tr *Trace) ([]Neighbor, error) {
	if lambda <= 0 {
		lambda = sx.budget
	}
	return sx.searchCostInto(q, k, lambda, false, f, dst, co, tr)
}

// searchBudgetInto is the pre-metering entry point kept for the batch
// engine: fan-out/merge with or without per-shard goroutines. The
// result is identical either way (deterministic merge), so batch
// callers whose worker pool already saturates the CPUs skip the nested
// parallelism.
func (sx *ShardedIndex) searchBudgetInto(q []float32, k, lambda int, parallel bool, dst []Neighbor, tr *Trace) ([]Neighbor, error) {
	return sx.searchCostInto(q, k, lambda, parallel, nil, dst, nil, tr)
}

// searchCostInto runs the fan-out/merge with every orthogonal query
// feature — filter, cost accounting, span tracing, optional per-shard
// goroutines. Results are appended to dst (reset to dst[:0] first; dst
// may be nil). Per-shard stats land in pooled slots and are summed
// after the fan-out joins, so the parallel path needs no atomics and
// the sequential unmetered path allocates nothing.
func (sx *ShardedIndex) searchCostInto(q []float32, k, lambda int, parallel bool, f *Filter, dst []Neighbor, co *Cost, tr *Trace) ([]Neighbor, error) {
	filtered := !f.Empty()
	if filtered {
		if err := validateFilter(f); err != nil {
			return nil, err
		}
	}
	if err := validateQuery(q, sx.dim, k, lambda); err != nil {
		return nil, err
	}
	root := tr.StartSpan(obs.StageQuery, -1) // nil-safe: -1 when untraced
	ctx := sx.ctxs.Get().(*shardCtx)
	stats := ctx.stats
	if co == nil {
		stats = nil
	}
	sx.searchShards(q, k, lambda, parallel, f, ctx.lists, stats, tr, root)
	mergeSpan := tr.StartSpan(obs.StageMerge, root)
	ctx.t.Reset(ctx.lists)
	if dst == nil {
		// The plain Search path: one exactly-sized result allocation.
		dst = make([]Neighbor, 0, k)
	}
	dst = dst[:0]
	for len(dst) < k {
		nb, ok := ctx.t.Pop()
		if !ok {
			break
		}
		// Tombstones from a dynamic snapshot are filtered here (the
		// per-shard fetch over-shot by the shard's tombstone count, so k
		// live results still come through); ids leave in the stable
		// external space. Both are no-ops on fresh builds, and a
		// filtered scan already rejected dead rows in-stream.
		if !filtered && sx.dead != nil && sx.dead[nb.ID] {
			continue
		}
		dst = append(dst, Neighbor{ID: sx.ids.Ext(nb.ID), Dist: nb.Dist})
	}
	if co != nil {
		for i := range ctx.stats {
			co.addStats(ctx.stats[i])
		}
	}
	sx.ctxs.Put(ctx)
	if tr != nil {
		obs.ObserveDur(obs.StageMerge, tr.FinishSpanN(mergeSpan, int64(len(dst)), 0))
		obs.ObserveDur(obs.StageQuery, tr.FinishSpan(root))
	}
	return dst, nil
}

// searchShards fans the query out across all shards — concurrently when
// asked and more than one CPU is available — filling lists with the
// per-shard top-k (global ids, ascending by distance). The per-shard
// buffers are reused across queries; stats, when non-nil, receives one
// slot per shard.
func (sx *ShardedIndex) searchShards(q []float32, k, lambda int, parallel bool, f *Filter, lists [][]pqueue.Neighbor, stats []core.SearchStats, tr *Trace, parent int) {
	s := len(sx.shards)
	lambdaShard := (lambda + s - 1) / s
	if !parallel || s == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := range sx.shards {
			sx.scanOne(i, q, k, lambdaShard, f, lists, stats, tr, parent)
		}
		return
	}
	var wg sync.WaitGroup
	for i := range sx.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sx.scanOne(i, q, k, lambdaShard, f, lists, stats, tr, parent)
		}(i)
	}
	wg.Wait()
}

// scanOne prepares shard i's predicate and stats slot and runs its scan.
func (sx *ShardedIndex) scanOne(i int, q []float32, k, lambdaShard int, f *Filter, lists [][]pqueue.Neighbor, stats []core.SearchStats, tr *Trace, parent int) {
	var accept func(int) bool
	if !f.Empty() {
		accept = sx.acceptFunc(f, sx.offsets[i])
	}
	var st *core.SearchStats
	if stats != nil {
		st = &stats[i]
	}
	lists[i] = sx.scanShard(sx.shards[i], q, i, k, lambdaShard, accept, lists[i], st, tr, parent)
}

// scanShard runs one shard's CSA scan, recording a per-shard span with
// rows-compared, candidates-verified, and bytes-scanned counters when
// traced, and the shard's stats into st when metered. The untraced
// unmetered unfiltered call is the original stats-free route, so it
// stays on the zero-allocation path. A filtered scan fetches k (its
// predicate already rejects tombstones in-stream); an unfiltered one
// over-fetches by the shard's tombstone count.
func (sx *ShardedIndex) scanShard(shard *Index, q []float32, i, k, lambdaShard int, accept func(int) bool, dst []pqueue.Neighbor, st *core.SearchStats, tr *Trace, parent int) []pqueue.Neighbor {
	if accept == nil && st == nil && tr == nil {
		return shard.searchOffsetInto(q, sx.shardFetch(i, k), lambdaShard, sx.offsets[i], dst)
	}
	sp := tr.StartShardSpan(obs.StageShardScan, parent, i)
	var stats core.SearchStats
	if accept != nil {
		dst, stats = shard.searchFilterOffsetIntoStats(q, k, lambdaShard, sx.offsets[i], accept, dst)
	} else {
		dst, stats = shard.searchOffsetIntoStats(q, sx.shardFetch(i, k), lambdaShard, sx.offsets[i], dst)
	}
	if tr != nil {
		obs.ObserveDur(obs.StageShardScan, tr.FinishSpanCost(sp, int64(stats.Comparisons), int64(stats.Candidates), stats.BytesScanned))
	}
	if st != nil {
		*st = stats
	}
	return dst
}

// shardFetch returns the tombstone-aware fetch for shard s.
func (sx *ShardedIndex) shardFetch(s, k int) int {
	if sx.shardDead == nil {
		return k
	}
	return fetchForShard(k, sx.shardDead[s], sx.offsets[s+1]-sx.offsets[s])
}

// fetchForShard is the single over-fetch policy shared by ShardedIndex
// and DynamicIndex (their results must stay conformant): how many
// candidates a shard must yield for k live results to survive tombstone
// filtering — k plus the shard's own tombstone count, clamped to the
// shard's size so the fetch never grows past what the shard holds.
func fetchForShard(k, dead, shardLen int) int {
	fetch := k + dead
	if fetch > shardLen {
		fetch = shardLen
	}
	return fetch
}

// searchOffsetInto routes a shard-local query to the core index (single-
// or multi-probe), appending into dst (reset to dst[:0] first) with
// result ids shifted to the global id space.
func (ix *Index) searchOffsetInto(q []float32, k, lambda, offset int, dst []pqueue.Neighbor) []pqueue.Neighbor {
	if ix.multi != nil {
		return ix.multi.SearchOffsetInto(q, k, lambda, offset, dst)
	}
	return ix.single.SearchOffsetInto(q, k, lambda, offset, dst)
}

// searchOffsetIntoStats is searchOffsetInto returning work counters,
// for per-shard span recording on traced queries.
func (ix *Index) searchOffsetIntoStats(q []float32, k, lambda, offset int, dst []pqueue.Neighbor) ([]pqueue.Neighbor, core.SearchStats) {
	if ix.multi != nil {
		return ix.multi.SearchOffsetIntoStats(q, k, lambda, offset, dst)
	}
	return ix.single.SearchOffsetIntoStats(q, k, lambda, offset, dst)
}

// searchFilterOffsetIntoStats is searchOffsetIntoStats restricted to
// candidates the accept predicate admits (shard-local ids).
func (ix *Index) searchFilterOffsetIntoStats(q []float32, k, lambda, offset int, accept func(int) bool, dst []pqueue.Neighbor) ([]pqueue.Neighbor, core.SearchStats) {
	if ix.multi != nil {
		return ix.multi.SearchFilterOffsetIntoStats(q, k, lambda, offset, accept, dst[:0])
	}
	return ix.single.SearchFilterOffsetIntoStats(q, k, lambda, offset, accept, dst[:0])
}

// NewShardedIndexWithAttrs is NewShardedIndex with per-vector metadata:
// attrs[i] belongs to data[i]. attrs may be shorter than data but not
// longer.
func NewShardedIndexWithAttrs(data [][]float32, attrs []Attrs, cfg Config, shards int) (*ShardedIndex, error) {
	if len(attrs) > len(data) {
		return nil, ErrAttrsMismatch
	}
	sx, err := NewShardedIndex(data, cfg, shards)
	if err != nil {
		return nil, err
	}
	if len(attrs) > 0 {
		sx.attrs = vec.MetaFromRows(append([]Attrs(nil), attrs...))
	}
	return sx, nil
}

// Attrs returns the metadata of the vector with the given external id,
// or nil.
func (sx *ShardedIndex) Attrs(id int) Attrs {
	slot, ok := sx.slotFor(id)
	if !ok {
		return nil
	}
	return sx.attrs.Row(slot)
}

// slotFor resolves an external id to a live store slot.
func (sx *ShardedIndex) slotFor(id int) (int, bool) {
	slot := id
	if sx.ids != nil {
		s, ok := sx.ids.Slot(id)
		if !ok {
			return 0, false
		}
		slot = s
	}
	if slot < 0 || slot >= sx.slots() || (sx.dead != nil && sx.dead[slot]) {
		return 0, false
	}
	return slot, true
}

// SearchFilter returns the k nearest neighbors among vectors matching f
// under the default candidate budget.
func (sx *ShardedIndex) SearchFilter(q []float32, k int, f *Filter) ([]Neighbor, error) {
	return sx.SearchFilterBudgetInto(q, k, sx.budget, f, nil)
}

// SearchFilterBudgetInto is SearchFilter with an explicit budget λ,
// appending into dst. Each shard drains its candidate stream past
// non-matching (or tombstoned) rows before any distance work, so the
// per-shard lists the tournament merges hold only live matching rows.
func (sx *ShardedIndex) SearchFilterBudgetInto(q []float32, k, lambda int, f *Filter, dst []Neighbor) ([]Neighbor, error) {
	return sx.searchCostInto(q, k, lambda, false, f, dst, nil, nil)
}

// acceptFunc builds the per-shard candidate predicate of a filtered
// query: live (not tombstoned) and matching the filter. local ids are
// shard-local; off is the shard's global offset.
func (sx *ShardedIndex) acceptFunc(f *Filter, off int) func(int) bool {
	attrs, dead := sx.attrs, sx.dead
	if dead == nil {
		return func(local int) bool { return f.Matches(attrs.Row(local + off)) }
	}
	return func(local int) bool {
		glob := local + off
		return !dead[glob] && f.Matches(attrs.Row(glob))
	}
}

// Distance returns the index's metric distance between two vectors.
func (sx *ShardedIndex) Distance(a, b []float32) float64 {
	return sx.shards[0].Distance(a, b)
}

// Shards returns the number of shards.
func (sx *ShardedIndex) Shards() int { return len(sx.shards) }

// Shard returns the s-th shard's Index and the global id of its first
// vector. Exposed for benchmarking and inspection; treat it as read-only.
func (sx *ShardedIndex) Shard(s int) (*Index, int) { return sx.shards[s], sx.offsets[s] }

// M returns the hash-string length (identical across shards).
func (sx *ShardedIndex) M() int { return sx.shards[0].M() }

// Dim returns the dimensionality of the indexed vectors.
func (sx *ShardedIndex) Dim() int { return sx.dim }

// Len returns the number of live (searchable) vectors: tombstoned rows
// carried by a dynamic snapshot are not counted.
func (sx *ShardedIndex) Len() int { return sx.slots() - len(sx.dead) }

// slots returns the total number of physical rows the shards index,
// including tombstoned ones — the length of the data slice Save/Load
// round-trips work with.
func (sx *ShardedIndex) slots() int { return sx.offsets[len(sx.offsets)-1] }

// Deleted returns the number of tombstoned rows this index carries
// (non-zero only for dynamic snapshots taken with pending deletes).
func (sx *ShardedIndex) Deleted() int { return len(sx.dead) }

// Bytes returns the approximate total index memory footprint.
func (sx *ShardedIndex) Bytes() int64 {
	var total int64
	for _, shard := range sx.shards {
		total += shard.Bytes()
	}
	return total
}

// BuildTime returns the wall-clock time of the parallel build.
func (sx *ShardedIndex) BuildTime() time.Duration { return sx.buildTime }

// validateShardCount sanity-checks a decoded shard count against the
// dataset size.
func validateShardCount(shards, n int) error {
	if shards <= 0 || shards > n {
		return fmt.Errorf("lccs: corrupt shard count %d for %d vectors", shards, n)
	}
	return nil
}
