package lccs

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// filterTestData builds a deterministic dataset with metadata: color
// cycles red/green/blue, price is the row index, and every 7th row
// carries no metadata at all.
func filterTestData(n, dim int) ([][]float32, []Attrs) {
	rng := rand.New(rand.NewSource(42))
	data := make([][]float32, n)
	attrs := make([]Attrs, n)
	colors := []string{"red", "green", "blue"}
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		data[i] = v
		if i%7 == 6 {
			continue // no metadata
		}
		attrs[i] = Attrs{
			"color": StrAttr(colors[i%3]),
			"price": IntAttr(int64(i)),
		}
	}
	return data, attrs
}

// bruteFilter computes the exact ranked answer over matching live rows.
func bruteFilter(data [][]float32, attrs []Attrs, live func(id int) bool, q []float32, k int, f *Filter, dist func(a, b []float32) float64) []Neighbor {
	var all []Neighbor
	for i, v := range data {
		if live != nil && !live(i) {
			continue
		}
		var a Attrs
		if i < len(attrs) {
			a = attrs[i]
		}
		if !f.Matches(a) {
			continue
		}
		all = append(all, Neighbor{ID: i, Dist: dist(q, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// testFilters covers equality (string and int), ranges, conjunctions,
// and a never-matching predicate.
func testFilters() map[string]*Filter {
	lo, hi := int64(20), int64(120)
	return map[string]*Filter{
		"eq-str":     {Terms: []FilterTerm{EqStr("color", "red")}},
		"eq-int":     {Terms: []FilterTerm{EqInt("price", 33)}},
		"range":      {Terms: []FilterTerm{Range("price", &lo, &hi)}},
		"and":        {Terms: []FilterTerm{EqStr("color", "blue"), Range("price", &lo, nil)}},
		"none":       {Terms: []FilterTerm{EqStr("color", "magenta")}},
		"min-only":   {Terms: []FilterTerm{Range("price", &hi, nil)}},
		"unfiltered": nil,
	}
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestFilteredSearchExactAcrossFacades pins the acceptance criterion:
// at an exhaustive budget, filtered search on every facade returns
// exactly the brute-force ranked answer over matching live vectors.
func TestFilteredSearchExactAcrossFacades(t *testing.T) {
	const n, dim, k = 200, 8, 10
	data, attrs := filterTestData(n, dim)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 7, Budget: n}

	single, err := NewIndexWithAttrs(data, attrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedIndexWithAttrs(data, attrs, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamicIndex(nil, cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if _, err := dyn.AddWithAttrs(v, attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dyn.WaitRebuild()

	facades := map[string]FilterSearcher{
		"index":   single,
		"sharded": sharded,
		"dynamic": dyn,
	}
	q := data[3]
	for fname, f := range testFilters() {
		want := bruteFilter(data, attrs, nil, q, k, f, single.Distance)
		for facade, ix := range facades {
			got, err := ix.SearchFilterBudgetInto(q, k, n, f, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", facade, fname, err)
			}
			if !neighborsEqual(got, want) {
				t.Errorf("%s/%s: got %v, want %v", facade, fname, got, want)
			}
		}
	}
}

// TestFilteredSearchWithDeletes checks tombstoned rows never surface in
// filtered results and the remaining ranking stays exact.
func TestFilteredSearchWithDeletes(t *testing.T) {
	const n, dim, k = 150, 8, 10
	data, attrs := filterTestData(n, dim)
	cfg := Config{Metric: Euclidean, M: 16, Seed: 7, Budget: n}
	dyn, err := NewDynamicIndex(nil, cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if _, err := dyn.AddWithAttrs(v, attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	dyn.WaitRebuild()
	deleted := map[int]bool{}
	for id := 0; id < n; id += 5 {
		if !dyn.Delete(id) {
			t.Fatalf("delete %d", id)
		}
		deleted[id] = true
	}
	live := func(id int) bool { return !deleted[id] }
	q := data[8]
	for fname, f := range testFilters() {
		want := bruteFilter(data, attrs, live, q, k, f, dyn.Distance)
		got, err := dyn.SearchFilterBudgetInto(q, k, n, f, nil)
		if err != nil {
			t.Fatalf("%s: %v", fname, err)
		}
		if !neighborsEqual(got, want) {
			t.Errorf("%s: got %v, want %v", fname, got, want)
		}
	}

	// The snapshot (→ ShardedIndex) must answer identically.
	_, sx, err := dyn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for fname, f := range testFilters() {
		want := bruteFilter(data, attrs, live, q, k, f, dyn.Distance)
		got, err := sx.SearchFilterBudgetInto(q, k, n, f, nil)
		if err != nil {
			t.Fatalf("snapshot/%s: %v", fname, err)
		}
		if !neighborsEqual(got, want) {
			t.Errorf("snapshot/%s: got %v, want %v", fname, got, want)
		}
	}
}

// TestFilterValidation pins the typed error for malformed filters.
func TestFilterValidation(t *testing.T) {
	data, attrs := filterTestData(30, 4)
	ix, err := NewIndexWithAttrs(data, attrs, Config{Metric: Euclidean, M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Filter{
		{Terms: []FilterTerm{{Key: "", Op: FilterEq, Value: IntAttr(1)}}},
		{Terms: []FilterTerm{{Key: "x", Op: FilterRange}}},
		{Terms: []FilterTerm{{Key: "x", Op: FilterOp(99)}}},
	}
	for i, f := range bad {
		if _, err := ix.SearchFilter(data[0], 3, f); !errors.Is(err, ErrInvalidFilter) {
			t.Errorf("bad filter %d: err = %v, want ErrInvalidFilter", i, err)
		}
	}
}

// TestAttrsAccessors checks attrs round-trip through every facade.
func TestAttrsAccessors(t *testing.T) {
	data, attrs := filterTestData(30, 4)
	cfg := Config{Metric: Euclidean, M: 8, Seed: 1}
	ix, err := NewIndexWithAttrs(data, attrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := NewShardedIndexWithAttrs(data, attrs, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamicIndex(nil, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if _, err := dyn.AddWithAttrs(v, attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range data {
		for name, got := range map[string]Attrs{
			"index":   ix.Attrs(i),
			"sharded": sx.Attrs(i),
			"dynamic": dyn.Attrs(i),
		} {
			if !got.Equal(attrs[i]) {
				t.Fatalf("%s: attrs(%d) = %v, want %v", name, i, got, attrs[i])
			}
		}
	}
}
