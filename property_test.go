package lccs

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestSearchInvariantsProperty drives random small indexes through the
// public API and asserts the result contract: ids in range and distinct,
// distances exact and sorted, result count = min(k, n) when the budget
// covers the dataset.
func TestSearchInvariantsProperty(t *testing.T) {
	f := func(seed uint64, metricRaw, mRaw, kRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 0xFACADE))
		metrics := []MetricKind{Euclidean, Angular, Hamming}
		metric := metrics[int(metricRaw)%len(metrics)]
		n := 10 + r.IntN(120)
		d := 4 + r.IntN(12)
		m := 4 + int(mRaw%28)
		k := 1 + int(kRaw%8)

		data := make([][]float32, n)
		for i := range data {
			v := make([]float32, d)
			for j := range v {
				if metric == Hamming {
					v[j] = float32(r.IntN(2))
				} else {
					v[j] = float32(r.NormFloat64() * 3)
				}
			}
			data[i] = v
		}
		ix, err := NewIndex(data, Config{Metric: metric, M: m, Seed: seed})
		if err != nil {
			return false
		}
		q := data[r.IntN(n)]
		res, err := ix.SearchBudget(q, k, n) // budget covers everything
		if err != nil {
			return false
		}
		want := k
		if n < k {
			want = n
		}
		if len(res) != want {
			return false
		}
		seen := map[int]bool{}
		for i, nb := range res {
			if nb.ID < 0 || nb.ID >= n || seen[nb.ID] {
				return false
			}
			seen[nb.ID] = true
			if nb.Dist != ix.Distance(data[nb.ID], q) {
				return false
			}
			if i > 0 && res[i-1].Dist > nb.Dist {
				return false
			}
		}
		// Full-budget self query: the query point itself must rank
		// first (Angular self-distance can be ~1e-8 in floating
		// point, not exactly 0).
		return res[0].Dist < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFullBudgetEqualsExactProperty: with λ = n every method must return
// the exact k-NN (every candidate is verified).
func TestFullBudgetEqualsExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 0xE8AC7))
		n := 20 + r.IntN(80)
		d := 4 + r.IntN(8)
		data := make([][]float32, n)
		for i := range data {
			v := make([]float32, d)
			for j := range v {
				v[j] = float32(r.NormFloat64())
			}
			data[i] = v
		}
		ix, err := NewIndex(data, Config{Metric: Euclidean, M: 8, Seed: seed})
		if err != nil {
			return false
		}
		q := make([]float32, d)
		for j := range q {
			q[j] = float32(r.NormFloat64())
		}
		got, err := ix.SearchBudget(q, 5, n)
		if err != nil {
			return false
		}
		want := exactKNNProp(data, q, minInt(5, n), ix.Distance)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Distances must match exactly (ids may tie).
			if got[i].Dist != want[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func exactKNNProp(data [][]float32, q []float32, k int, dist func(a, b []float32) float64) []Neighbor {
	best := make([]Neighbor, 0, k+1)
	for id, v := range data {
		d := dist(v, q)
		if len(best) < k || d < best[len(best)-1].Dist {
			best = append(best, Neighbor{ID: id, Dist: d})
			for i := len(best) - 1; i > 0 && best[i].Dist < best[i-1].Dist; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
