package lccs

import (
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"lccs/internal/dataset"
	"lccs/internal/faultfs"
	"lccs/internal/obs"
	"lccs/internal/vec"
	"lccs/internal/wal"
)

// ErrNotDurable is returned (wrapped) by DurableIndex write paths when
// the write-ahead log could not make the write durable. The in-memory
// index may already hold the write, but a crash could lose it, so
// callers must not acknowledge it; the log is broken until the index is
// reopened.
var ErrNotDurable = errors.New("lccs: write not durable: write-ahead log failure")

// SyncPolicy selects what an acknowledged DurableIndex write
// guarantees; it mirrors the policies of the underlying write-ahead
// log.
type SyncPolicy int

// The three sync policies, from strongest guarantee to fastest ack.
const (
	// SyncAlways fsyncs before acknowledging: an acked write survives
	// OS and power failure. Concurrent writers share fsyncs (group
	// commit), so throughput scales far better than one fsync per write.
	SyncAlways SyncPolicy = iota
	// SyncInterval acks once the write reached the OS (it survives a
	// process kill) and fsyncs on a timer: at most one interval of
	// acked writes can be lost to an OS crash or power failure.
	SyncInterval
	// SyncNone acks once the write reached the OS and never fsyncs:
	// acked writes survive a process kill, but an OS crash or power
	// failure can lose everything the OS had not yet flushed on its
	// own. Use only where the ingest stream can be replayed from
	// elsewhere.
	SyncNone
)

// ParseSyncPolicy resolves a CLI-style sync-policy name
// (always|interval|none).
func ParseSyncPolicy(name string) (SyncPolicy, error) {
	p, err := wal.ParsePolicy(name)
	if err != nil {
		return 0, fmt.Errorf("lccs: %w", err)
	}
	return SyncPolicy(p), nil
}

// String returns the CLI-facing policy name.
func (p SyncPolicy) String() string { return wal.SyncPolicy(p).String() }

// DurableConfig configures OpenDurable.
type DurableConfig struct {
	// Config is the index configuration used when the data directory is
	// fresh (no snapshot yet). An existing snapshot's container carries
	// its own resolved configuration, which wins.
	Config Config
	// Sync selects the durability guarantee of acknowledged writes. The
	// zero value is SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the fsync period under SyncInterval. 0 selects
	// 50ms.
	SyncInterval time.Duration
	// SegmentBytes rotates WAL segments at this size. 0 selects 64 MiB.
	SegmentBytes int64
	// RebuildAt is the DynamicIndex delta threshold. 0 selects the
	// default.
	RebuildAt int
	// FS is the filesystem the manifest, WAL, and snapshot lifecycle go
	// through. Nil selects the real filesystem; tests inject faults
	// (torn writes, failed fsyncs, crashes) through it. Snapshot file
	// contents are still written by the dataset/container savers on the
	// real filesystem — FS coverage of a snapshot starts at its fsync —
	// so a DurableConfig FS must wrap the real filesystem, not replace
	// it.
	FS wal.FS
	// Logger receives structured recovery, checkpoint, and WAL
	// lifecycle events. Nil keeps the library silent (events are
	// discarded), so embedding processes opt in explicitly.
	Logger *slog.Logger
}

// RecoveryInfo summarizes what OpenDurable replayed.
type RecoveryInfo struct {
	// Segments is how many WAL segment files were read; Records how
	// many records were applied; Skipped how many were already captured
	// by the snapshot.
	Segments int
	Records  uint64
	Skipped  uint64
	// TornBytes is how many bytes of torn WAL tail (a write in flight
	// at the crash) were discarded.
	TornBytes int64
	// Duration is the wall-clock recovery time (snapshot load excluded,
	// replay included).
	Duration time.Duration
	// CheckpointLSN is the manifest watermark recovery started from;
	// LastLSN the highest LSN replayed (0 when the log was empty).
	CheckpointLSN, LastLSN uint64
	// SnapshotVectors is how many vectors the snapshot container
	// restored before replay.
	SnapshotVectors int
}

// CheckpointInfo summarizes one checkpoint.
type CheckpointInfo struct {
	// LSN is the watermark the snapshot captured: the log was truncated
	// through it.
	LSN uint64
	// Generation is the new snapshot generation.
	Generation uint64
	// Live and Tombstones describe the persisted snapshot.
	Live, Tombstones int
	// Container and Dataset are the written files (relative to the data
	// directory).
	Container, Dataset string
	// Skipped reports that the index was empty and nothing was written;
	// recovery replays the (intact) log instead.
	Skipped bool
	// Took is the wall-clock checkpoint duration.
	Took time.Duration
}

// WALStats is a point-in-time summary of the write-ahead log, surfaced
// through /v1/stats and /metrics by the serving layer.
type WALStats struct {
	Policy string `json:"policy"`
	// Depth is the number of records only the log holds (appended since
	// the last checkpoint) — replay work a crash would incur.
	Depth   uint64 `json:"depth"`
	LastLSN uint64 `json:"last_lsn"`
	// SyncedLSN is the highest LSN known fsynced.
	SyncedLSN     uint64 `json:"synced_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// Segments and Bytes describe the live segment files.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// AppendedBytes is the cumulative log bytes accepted since open —
	// monotone across checkpoint truncation, the write-traffic meter.
	AppendedBytes int64 `json:"appended_bytes"`
	// Fsyncs counts fsync calls; the latency fields describe them.
	Fsyncs          uint64  `json:"fsyncs"`
	LastFsyncMicros float64 `json:"last_fsync_us"`
	MeanFsyncMicros float64 `json:"mean_fsync_us"`
}

// DurableIndex is a DynamicIndex whose inserts and deletes are recorded
// in a write-ahead log before they are acknowledged, and whose state is
// periodically checkpointed into a snapshot container — so a crash
// (SIGKILL, OOM, power loss within the sync policy's guarantee) loses
// no acknowledged write. It owns a data directory:
//
//	<dir>/MANIFEST            durable root: active snapshot + WAL watermark
//	<dir>/snapshot-N.lccs     index container (LCCSPKG2/3) of generation N
//	<dir>/snapshot-N.ds       the snapshot's vectors
//	<dir>/wal/*.wal           log segments holding writes since the snapshot
//
// OpenDurable recovers: it loads the manifest's snapshot and replays
// the log records above the manifest watermark, reproducing exactly the
// acknowledged state — inserted ids searchable, deleted ids dead, and
// the id watermark monotone across any number of crash cycles.
// Checkpoint persists a new snapshot and truncates the log; Close
// flushes and closes the log (checkpoint first for a fast next boot).
//
// All Searcher methods are served by the embedded DynamicIndex; Add,
// AddBatch, and Delete journal before acknowledging. A DurableIndex is
// safe for concurrent use. The data directory must have a single owner:
// running two processes over one directory corrupts it.
type DurableIndex struct {
	*DynamicIndex
	dir string
	fs  wal.FS
	log *wal.Log
	// wmu orders id allocation against WAL appends, so replaying the
	// log in LSN order reassigns exactly the original ids. It is held
	// across apply+append but released before the durability wait, so
	// concurrent writers group-commit.
	wmu sync.Mutex
	// cmu serializes checkpoints.
	cmu      sync.Mutex
	gen      uint64
	recovery RecoveryInfo
	logger   *slog.Logger
}

// Compile-time conformance: a DurableIndex serves queries like any
// other facade.
var _ Searcher = (*DurableIndex)(nil)

const walSubdir = "wal"

func snapshotNames(gen uint64) (container, ds string) {
	return fmt.Sprintf("snapshot-%06d.lccs", gen), fmt.Sprintf("snapshot-%06d.ds", gen)
}

// OpenDurable opens (creating if needed) a durable index over a data
// directory, recovering any state a previous process left: the
// manifest's snapshot is loaded and the write-ahead log above the
// checkpoint watermark is replayed. See DurableIndex for the directory
// layout and guarantees.
func OpenDurable(dir string, dc DurableConfig) (*DurableIndex, error) {
	fsys := dc.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	logger := dc.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := wal.ReadManifestFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	var dyn *DynamicIndex
	var snapVectors int
	if man != nil && man.Container != "" {
		ds, err := dataset.Load(filepath.Join(dir, man.Dataset))
		if err != nil {
			return nil, fmt.Errorf("lccs: durable open: load snapshot vectors: %w", err)
		}
		// The whole warm-restart path is flat: the dataset loads into one
		// contiguous block, the container decodes against views of it,
		// and the dynamic index adopts the same store — no per-row
		// materialization or re-packing copies anywhere.
		flat, err := ds.FlatData()
		if err != nil {
			return nil, fmt.Errorf("lccs: durable open: load snapshot vectors: %w", err)
		}
		sx, err := LoadShardedStore(filepath.Join(dir, man.Container), flat)
		if err != nil {
			return nil, fmt.Errorf("lccs: durable open: load snapshot container: %w", err)
		}
		dyn, err = NewDynamicIndexFromShardedStore(sx, dc.RebuildAt)
		if err != nil {
			return nil, err
		}
		snapVectors = flat.Len()
	} else {
		dyn, err = NewDynamicIndex(nil, dc.Config, dc.RebuildAt)
		if err != nil {
			return nil, err
		}
		if man != nil && man.IDWatermark > 0 {
			// The last checkpoint captured an emptied-out index: no
			// vectors to load, but the id watermark must survive so
			// deleted ids are never reissued.
			if err := dyn.restoreWatermark(int(man.IDWatermark)); err != nil {
				return nil, err
			}
		}
	}
	var from uint64
	var gen uint64
	if man != nil {
		from = man.LSN
		gen = man.Generation
	}
	log, err := wal.Open(filepath.Join(dir, walSubdir), wal.Options{
		Policy:       wal.SyncPolicy(dc.Sync),
		Interval:     dc.SyncInterval,
		SegmentBytes: dc.SegmentBytes,
		// Keep the LSN sequence above the checkpoint watermark even
		// when every segment was truncated, so post-checkpoint writes
		// are never mistaken for already-checkpointed ones.
		MinNextLSN: from,
		FS:         fsys,
		Logger:     logger,
	})
	if err != nil {
		return nil, err
	}
	di := &DurableIndex{DynamicIndex: dyn, dir: dir, fs: fsys, log: log, gen: gen, logger: logger}
	start := time.Now()
	info, err := log.Replay(from, func(rec wal.Record) error {
		switch rec.Op {
		case wal.OpInsert, wal.OpInsertAttrs:
			var attrs vec.Attrs
			if rec.Op == wal.OpInsertAttrs {
				a, used, derr := vec.DecodeAttrs(rec.Attrs)
				if derr != nil || used != len(rec.Attrs) {
					return fmt.Errorf("lccs: durable open: replay insert LSN %d: corrupt attribute blob", rec.LSN)
				}
				attrs = a
			}
			id, aerr := dyn.AddWithAttrs(rec.Vec, attrs)
			if aerr != nil && isValidationError(aerr) {
				// The vector was rejected: the log disagrees with the
				// snapshot it claims to extend.
				return fmt.Errorf("lccs: durable open: replay insert LSN %d: %w", rec.LSN, aerr)
			}
			if int64(id) != rec.ID {
				return fmt.Errorf("lccs: durable open: replay assigned id %d to record claiming %d (LSN %d)", id, rec.ID, rec.LSN)
			}
		case wal.OpDelete:
			dyn.Delete(int(rec.ID))
		default:
			return fmt.Errorf("lccs: durable open: unknown WAL op %d at LSN %d", rec.Op, rec.LSN)
		}
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	log.SetCheckpointLSN(from)
	// A crash between manifest write and log truncation leaves fully
	// checkpointed segments behind; finish the truncation now. Likewise
	// remove snapshot files a crashed checkpoint orphaned.
	if err := log.TruncateThrough(from); err != nil {
		log.Close()
		return nil, err
	}
	if err := di.removeOrphans(man); err != nil {
		log.Close()
		return nil, err
	}
	replayTook := time.Since(start)
	obs.ObserveDur(obs.StageRecoveryReplay, replayTook)
	di.recovery = RecoveryInfo{
		Segments:        info.Segments,
		Records:         info.Records,
		Skipped:         info.Skipped,
		TornBytes:       info.TornBytes,
		Duration:        replayTook,
		CheckpointLSN:   from,
		LastLSN:         info.LastLSN,
		SnapshotVectors: snapVectors,
	}
	logger.Info("durable: recovered",
		"dir", dir,
		"snapshot_vectors", snapVectors,
		"segments", info.Segments,
		"records", info.Records,
		"skipped", info.Skipped,
		"torn_bytes", info.TornBytes,
		"checkpoint_lsn", from,
		"last_lsn", info.LastLSN,
		"took", replayTook)
	return di, nil
}

// removeOrphans deletes snapshot files not referenced by the manifest —
// debris of a checkpoint that crashed between writing its files and
// committing the manifest — plus any manifest temp file.
func (di *DurableIndex) removeOrphans(man *wal.Manifest) error {
	entries, err := di.fs.ReadDir(di.dir)
	if err != nil {
		return err
	}
	keep := map[string]bool{}
	if man != nil {
		keep[man.Container] = true
		keep[man.Dataset] = true
	}
	for _, e := range entries {
		name := e.Name()
		orphan := name == wal.ManifestName+".tmp"
		if ok, _ := filepath.Match("snapshot-*", name); ok && !keep[name] {
			orphan = true
		}
		if orphan {
			if err := di.fs.Remove(filepath.Join(di.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// isValidationError reports whether a DynamicIndex.Add error means the
// vector was rejected (as opposed to a deferred background-build
// failure delivered alongside a successful insert).
func isValidationError(err error) bool {
	return errors.Is(err, ErrEmptyVector) || errors.Is(err, ErrDimensionMismatch)
}

// Add inserts a vector and blocks until the insert is durable under
// the configured sync policy; only then is the id safe to acknowledge.
// As with DynamicIndex.Add, a non-nil error alongside a valid id can be
// a deferred background-build failure (the insert itself succeeded); an
// error wrapping ErrNotDurable, however, means the write may not
// survive a crash and must not be acknowledged.
func (di *DurableIndex) Add(v []float32) (int, error) {
	return di.AddWithAttrs(v, nil)
}

// AddWithAttrs is Add with per-vector metadata: the attribute row is
// journaled alongside the vector (an OpInsertAttrs record), so filtered
// search state survives crash recovery exactly like the vectors do.
func (di *DurableIndex) AddWithAttrs(v []float32, a Attrs) (int, error) {
	// The stage clock: apply covers the write-lock wait plus the
	// in-memory insert; append the journal record write; fsync the
	// group-commit durability wait.
	t0 := time.Now()
	di.wmu.Lock()
	id, aerr := di.DynamicIndex.AddWithAttrs(v, a)
	if aerr != nil && isValidationError(aerr) {
		di.wmu.Unlock()
		return id, aerr
	}
	t1 := time.Now()
	obs.ObserveDur(obs.StageIndexApply, t1.Sub(t0))
	lsn, werr := di.log.Append(insertRecord(id, v, a))
	di.wmu.Unlock()
	t2 := time.Now()
	obs.ObserveDur(obs.StageWALAppend, t2.Sub(t1))
	if werr == nil {
		werr = di.log.WaitDurable(lsn)
		obs.ObserveSince(obs.StageWALFsync, t2)
	}
	if werr != nil {
		return id, fmt.Errorf("%w: %v", ErrNotDurable, werr)
	}
	return id, aerr
}

// insertRecord builds the journal record for one insert: a plain
// OpInsert when the row carries no metadata, an OpInsertAttrs framing
// the canonical attribute encoding otherwise.
func insertRecord(id int, v []float32, a Attrs) wal.Record {
	if len(a) == 0 {
		return wal.Record{Op: wal.OpInsert, ID: int64(id), Vec: v}
	}
	return wal.Record{Op: wal.OpInsertAttrs, ID: int64(id), Vec: v, Attrs: vec.AppendAttrs(nil, a)}
}

// AddBatch inserts many vectors with one journal append and one
// durability wait, so a bulk ingest pays one (group-committed) fsync
// per batch instead of one per vector. On a validation error the valid
// prefix is inserted, journaled, and returned alongside the error.
func (di *DurableIndex) AddBatch(vecs [][]float32) ([]int, error) {
	return di.AddBatchWithAttrs(vecs, nil)
}

// AddBatchWithAttrs is AddBatch with per-vector metadata: attrs[i]
// belongs to vecs[i]. attrs may be nil (no metadata) or must match
// vecs in length; rows whose attrs are empty journal as plain inserts.
func (di *DurableIndex) AddBatchWithAttrs(vecs [][]float32, attrs []Attrs) ([]int, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	if attrs != nil && len(attrs) != len(vecs) {
		return nil, ErrAttrsMismatch
	}
	ids := make([]int, 0, len(vecs))
	recs := make([]wal.Record, 0, len(vecs))
	var deferred, rejected error
	t0 := time.Now()
	di.wmu.Lock()
	for i, v := range vecs {
		var a Attrs
		if attrs != nil {
			a = attrs[i]
		}
		id, aerr := di.DynamicIndex.AddWithAttrs(v, a)
		if aerr != nil && isValidationError(aerr) {
			rejected = fmt.Errorf("vector %d: %w", len(ids), aerr)
			break
		}
		if aerr != nil {
			deferred = aerr
		}
		ids = append(ids, id)
		recs = append(recs, insertRecord(id, v, a))
	}
	t1 := time.Now()
	obs.ObserveDur(obs.StageIndexApply, t1.Sub(t0))
	var lsn uint64
	var werr error
	if len(recs) > 0 {
		lsn, werr = di.log.Append(recs...)
	}
	di.wmu.Unlock()
	t2 := time.Now()
	obs.ObserveDur(obs.StageWALAppend, t2.Sub(t1))
	if len(recs) > 0 && werr == nil {
		werr = di.log.WaitDurable(lsn)
		obs.ObserveSince(obs.StageWALFsync, t2)
	}
	switch {
	case werr != nil:
		return ids, fmt.Errorf("%w: %v", ErrNotDurable, werr)
	case rejected != nil:
		return ids, rejected
	}
	return ids, deferred
}

// DeleteDurable tombstones id and blocks until the delete is durable
// under the configured sync policy. It reports whether the id was live;
// an error wrapping ErrNotDurable means the delete may not survive a
// crash and must not be acknowledged.
func (di *DurableIndex) DeleteDurable(id int) (bool, error) {
	t0 := time.Now()
	di.wmu.Lock()
	ok := di.DynamicIndex.Delete(id)
	if !ok {
		di.wmu.Unlock()
		return false, nil
	}
	t1 := time.Now()
	obs.ObserveDur(obs.StageIndexApply, t1.Sub(t0))
	lsn, werr := di.log.Append(wal.Record{Op: wal.OpDelete, ID: int64(id)})
	di.wmu.Unlock()
	t2 := time.Now()
	obs.ObserveDur(obs.StageWALAppend, t2.Sub(t1))
	if werr == nil {
		werr = di.log.WaitDurable(lsn)
		obs.ObserveSince(obs.StageWALFsync, t2)
	}
	if werr != nil {
		return true, fmt.Errorf("%w: %v", ErrNotDurable, werr)
	}
	return true, nil
}

// Delete is DeleteDurable for callers bound to the DynamicIndex
// signature; a journal failure is reported as not-live so it is never
// silently acknowledged. Prefer DeleteDurable where the error matters.
func (di *DurableIndex) Delete(id int) bool {
	ok, err := di.DeleteDurable(id)
	return ok && err == nil
}

// DeleteBatch tombstones many ids with one journal append and one
// durability wait — the delete-side mirror of AddBatch, so a bulk
// delete pays one (group-committed) fsync instead of one per id. It
// returns how many ids were live (now tombstoned, durably) and which
// were unknown or already deleted; an error wrapping ErrNotDurable
// means the tombstones may not survive a crash and must not be
// acknowledged.
func (di *DurableIndex) DeleteBatch(ids []int) (deleted int, missing []int, err error) {
	if len(ids) == 0 {
		return 0, nil, nil
	}
	recs := make([]wal.Record, 0, len(ids))
	t0 := time.Now()
	di.wmu.Lock()
	for _, id := range ids {
		if di.DynamicIndex.Delete(id) {
			recs = append(recs, wal.Record{Op: wal.OpDelete, ID: int64(id)})
		} else {
			missing = append(missing, id)
		}
	}
	t1 := time.Now()
	obs.ObserveDur(obs.StageIndexApply, t1.Sub(t0))
	var lsn uint64
	var werr error
	if len(recs) > 0 {
		lsn, werr = di.log.Append(recs...)
	}
	di.wmu.Unlock()
	t2 := time.Now()
	obs.ObserveDur(obs.StageWALAppend, t2.Sub(t1))
	if len(recs) > 0 && werr == nil {
		werr = di.log.WaitDurable(lsn)
		obs.ObserveSince(obs.StageWALFsync, t2)
	}
	if werr != nil {
		return len(recs), missing, fmt.Errorf("%w: %v", ErrNotDurable, werr)
	}
	return len(recs), missing, nil
}

// Checkpoint persists the current state as a new snapshot generation,
// commits the manifest, and truncates the write-ahead log through the
// captured watermark — bounding both recovery replay time and the data
// directory's size. Writers are blocked only while the in-memory
// snapshot is taken (the buffer shard build), not during file writes.
//
// An index with no live vectors checkpoints too: the manifest records
// the id watermark instead of naming a container, so even a fully
// emptied index truncates its log and never reissues a deleted id. The
// checkpoint is skipped only when the log holds nothing past the
// previous one (there is nothing new to capture).
func (di *DurableIndex) Checkpoint() (CheckpointInfo, error) {
	di.cmu.Lock()
	defer di.cmu.Unlock()
	start := time.Now()
	di.wmu.Lock()
	lsn := di.log.LastLSN()
	empty := di.DynamicIndex.Len() == 0
	var watermark int
	var frozen *vec.Store
	var sx *ShardedIndex
	var err error
	if empty {
		watermark = di.DynamicIndex.idWatermark()
	} else {
		frozen, sx, err = di.DynamicIndex.snapshotStore()
	}
	depth := di.log.Stats().Depth
	di.wmu.Unlock()
	snapTook := time.Since(start)
	obs.ObserveDur(obs.StageCkptSnapshot, snapTook)
	if err != nil {
		return CheckpointInfo{}, err
	}
	if empty && depth == 0 {
		// Nothing new since the last checkpoint captured this (empty)
		// state — including the fresh-directory case.
		return CheckpointInfo{Skipped: true, Took: time.Since(start)}, nil
	}
	// Claim the generation before any file is written. A checkpoint
	// that fails partway (even after its manifest committed — say the
	// directory fsync or the log truncation errored) leaves di.gen
	// advanced, so the next attempt picks a fresh generation and never
	// overwrites snapshot files a committed manifest may still
	// reference. Claiming only after a fully successful commit — as
	// this code once did — let the next checkpoint reuse the
	// generation the live manifest pointed at and clobber its files:
	// the directory then looked checkpointed but could never recover.
	di.gen++
	gen := di.gen
	man := &wal.Manifest{LSN: lsn, Generation: gen}
	info := CheckpointInfo{LSN: lsn, Generation: gen}
	writeStart := time.Now()
	if empty {
		man.IDWatermark = uint64(watermark)
	} else {
		container, dsName := snapshotNames(gen)
		if err := sx.Save(filepath.Join(di.dir, container)); err != nil {
			return CheckpointInfo{}, err
		}
		// Persist the frozen store as a flat-backed dataset: the vector
		// block writes out in one pass, no per-row materialization.
		out := dataset.NewFlat("durable", "snapshot", frozen, nil)
		if err := out.Save(filepath.Join(di.dir, dsName)); err != nil {
			return CheckpointInfo{}, err
		}
		// The snapshot files must be on disk before the manifest names
		// them.
		for _, name := range []string{container, dsName} {
			if err := fsyncFile(di.fs, filepath.Join(di.dir, name)); err != nil {
				return CheckpointInfo{}, err
			}
		}
		man.Container, man.Dataset = container, dsName
		info.Container, info.Dataset = container, dsName
		info.Live, info.Tombstones = sx.Len(), sx.Deleted()
	}
	writeTook := time.Since(writeStart)
	obs.ObserveDur(obs.StageCkptWrite, writeTook)
	manStart := time.Now()
	if err := wal.WriteManifestFS(di.fs, di.dir, man); err != nil {
		return CheckpointInfo{}, err
	}
	manTook := time.Since(manStart)
	obs.ObserveDur(obs.StageCkptManifest, manTook)
	truncStart := time.Now()
	if err := di.log.TruncateThrough(lsn); err != nil {
		return CheckpointInfo{}, err
	}
	// Sweep everything the committed manifest does not reference: the
	// previous generation's files plus any debris a failed earlier
	// checkpoint left behind. OpenDurable runs the same sweep, so a
	// crash anywhere in here is finished by the next recovery.
	if err := di.removeOrphans(man); err != nil {
		return CheckpointInfo{}, err
	}
	truncTook := time.Since(truncStart)
	obs.ObserveDur(obs.StageCkptTruncate, truncTook)
	info.Took = time.Since(start)
	di.logger.Info("durable: checkpoint",
		"generation", gen,
		"lsn", lsn,
		"live", info.Live,
		"tombstones", info.Tombstones,
		"snapshot_took", snapTook,
		"write_took", writeTook,
		"manifest_took", manTook,
		"truncate_took", truncTook,
		"took", info.Took)
	return info, nil
}

// Close waits for any background build and closes the write-ahead log
// (flushing and fsyncing it). It does not checkpoint: the log replays
// on the next OpenDurable. Call Checkpoint first for a fast next boot.
func (di *DurableIndex) Close() error {
	di.WaitRebuild()
	return di.log.Close()
}

// Recovery returns what OpenDurable replayed.
func (di *DurableIndex) Recovery() RecoveryInfo { return di.recovery }

// Dir returns the data directory the index owns.
func (di *DurableIndex) Dir() string { return di.dir }

// WALStats returns a point-in-time summary of the write-ahead log.
func (di *DurableIndex) WALStats() WALStats {
	st := di.log.Stats()
	return WALStats{
		Policy:          st.Policy,
		Depth:           st.Depth,
		LastLSN:         st.LastLSN,
		SyncedLSN:       st.SyncedLSN,
		CheckpointLSN:   st.CheckpointLSN,
		Segments:        st.Segments,
		Bytes:           st.Bytes,
		AppendedBytes:   st.AppendedBytes,
		Fsyncs:          st.Fsyncs,
		LastFsyncMicros: float64(st.LastFsync.Nanoseconds()) / 1e3,
		MeanFsyncMicros: float64(st.MeanFsync.Nanoseconds()) / 1e3,
	}
}

// fsyncFile fsyncs an already written file by path.
func fsyncFile(fsys wal.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}
