package lccs

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"lccs/internal/faultfs"
	"lccs/internal/wal"
)

// faultVecs builds n small distinct vectors for durable fault tests.
func faultVecs(n int) [][]float32 {
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = []float32{float32(i), float32(i % 3), -float32(i), 1}
	}
	return vecs
}

// openFaulted opens a durable index over a fresh injector.
func openFaulted(t *testing.T, dir string) (*DurableIndex, *faultfs.Injected) {
	t.Helper()
	fs := faultfs.NewInjected(faultfs.OS{})
	cfg := durableCfg()
	cfg.FS = fs
	di, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return di, fs
}

// checkDurableState reopens dir on the real filesystem and asserts the
// acknowledged history: every acked insert's vector present under its
// original id, every acked delete dead, the id watermark past every
// issued id, and the directory free of checkpoint debris (no manifest
// temp file, no snapshot files the manifest does not reference). It
// then checkpoints and reopens once more, proving the recovered
// directory is not just readable but fully operable.
func checkDurableState(t *testing.T, dir string, vecs [][]float32, deleted map[int]bool) {
	t.Helper()
	di := mustOpenDurable(t, dir)
	// A full-budget search over every vector must surface exactly the
	// live ids: every acked insert present, every acked delete dead.
	// (Vector() is no probe for deletion — tombstoned rows answer until
	// compacted.)
	found := map[int]bool{}
	for _, v := range vecs {
		for id := range searchIDs(t, di, v, len(vecs)+4) {
			found[id] = true
		}
	}
	for id := range vecs {
		switch {
		case deleted[id] && found[id]:
			t.Fatalf("deleted id %d resurrected in search results", id)
		case !deleted[id] && !found[id]:
			t.Fatalf("acked id %d lost", id)
		}
	}
	for id := range vecs {
		if !deleted[id] {
			got := di.Vector(id)
			for j, w := range vecs[id] {
				if got == nil || got[j] != w {
					t.Fatalf("id %d: vector %v, want %v", id, got, vecs[id])
				}
			}
		}
	}
	checkNoDebris(t, dir)
	newID, err := di.Add([]float32{9, 9, 9, 9})
	if err != nil {
		t.Fatalf("Add after recovery: %v", err)
	}
	if newID < len(vecs) {
		t.Fatalf("id %d reused after recovery (watermark %d)", newID, len(vecs))
	}
	if _, err := di.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after recovery: %v", err)
	}
	if err := di.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	di2 := mustOpenDurable(t, dir)
	defer di2.Close()
	if got := di2.Vector(newID); got == nil {
		t.Fatalf("id %d added after recovery lost on second reopen", newID)
	}
}

// checkNoDebris asserts the directory holds no manifest temp file and
// no snapshot files outside the manifest.
func checkNoDebris(t *testing.T, dir string) {
	t.Helper()
	man, err := wal.ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == wal.ManifestName+".tmp" {
			t.Fatalf("manifest temp file survived recovery")
		}
		if strings.HasPrefix(name, "snapshot-") {
			if man == nil || (name != man.Container && name != man.Dataset) {
				t.Fatalf("orphan snapshot file %s survived recovery", name)
			}
		}
	}
}

// A checkpoint that commits its manifest but fails a later step (here:
// the directory fsync after the rename) must not let the next
// checkpoint reuse the generation the live manifest references — the
// regression was a stale in-memory generation counter, so the retry
// overwrote the committed snapshot's files in place and a crash during
// that overwrite made the directory permanently unrecoverable.
func TestCheckpointFailureNeverReusesGeneration(t *testing.T) {
	dir := t.TempDir()
	di, fs := openFaulted(t, dir)
	vecs := faultVecs(20)
	for _, v := range vecs[:10] {
		if _, err := di.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if info, err := di.Checkpoint(); err != nil || info.Generation != 1 {
		t.Fatalf("first checkpoint = %+v, %v", info, err)
	}
	for _, v := range vecs[10:] {
		if _, err := di.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	// The first SyncDir of the checkpoint is the manifest commit's
	// directory fsync — after the rename, so generation 2's manifest is
	// live on disk when the checkpoint reports failure.
	fs.Inject(&faultfs.Fault{Op: faultfs.OpSyncDir, Once: true})
	if _, err := di.Checkpoint(); err == nil {
		t.Fatal("checkpoint with failing dir fsync reported success")
	}
	info, err := di.Checkpoint()
	if err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	if info.Generation <= 2 {
		t.Fatalf("retry reused generation %d; the live manifest references generation 2's files", info.Generation)
	}
	crash(di)
	checkDurableState(t, dir, vecs, nil)
}

// Crash the filesystem at every step of a checkpoint in turn, and
// demand that the next OpenDurable completes the interrupted cleanup
// from every position: state intact, no debris, directory fully
// operable. This sweeps the whole protocol — snapshot fsyncs, manifest
// temp write/fsync/rename/dir-fsync, log truncation (including the
// segment rotation inside it), and the orphan sweep.
func TestCheckpointCrashAtEveryStep(t *testing.T) {
	vecs := faultVecs(12)
	deleted := map[int]bool{1: true, 5: true, 9: true}
	for n := uint64(1); ; n++ {
		n := n
		completed := false
		t.Run(fmt.Sprintf("step%02d", n), func(t *testing.T) {
			dir := t.TempDir()
			di, fs := openFaulted(t, dir)
			for _, v := range vecs[:8] {
				if _, err := di.Add(v); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			for _, id := range []int{1, 5} {
				if ok, err := di.DeleteDurable(id); !ok || err != nil {
					t.Fatalf("DeleteDurable(%d) = %v, %v", id, ok, err)
				}
			}
			if _, err := di.Checkpoint(); err != nil {
				t.Fatalf("baseline checkpoint: %v", err)
			}
			for _, v := range vecs[8:] {
				if _, err := di.Add(v); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			if ok, err := di.DeleteDurable(9); !ok || err != nil {
				t.Fatalf("DeleteDurable(9) = %v, %v", ok, err)
			}
			fs.Inject(&faultfs.Fault{AtStep: fs.Steps() + n, Crash: true})
			_, cerr := di.Checkpoint()
			if !fs.Killed() {
				// The checkpoint finished before step n: the sweep is
				// past the end of the protocol.
				if cerr != nil {
					t.Fatalf("checkpoint failed without the crash fault firing: %v", cerr)
				}
				completed = true
			}
			crash(di)
			di.Close()
			checkDurableState(t, dir, vecs, deleted)
		})
		if completed {
			break
		}
		if n > 100 {
			t.Fatal("checkpoint did not complete within 100 injected steps")
		}
	}
}

// A write failure on the WAL must never acknowledge the write: the Add
// reports ErrNotDurable, and whether or not the in-memory index already
// holds the vector, recovery never resurrects an id issued after the
// failure in a way that collides with later acknowledged writes.
func TestDurableWriteFailureNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	di, fs := openFaulted(t, dir)
	vecs := faultVecs(6)
	for _, v := range vecs {
		if _, err := di.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	// A dead disk: every WAL write fails until reopen.
	fs.Inject(&faultfs.Fault{Op: faultfs.OpWrite, Path: ".wal", Err: faultfs.ErrNoSpace})
	if _, err := di.Add([]float32{7, 7, 7, 7}); err == nil {
		t.Fatal("Add on dead disk acknowledged")
	}
	crash(di)
	di.Close()
	checkDurableState(t, dir, vecs, nil)
}
