// Command lccs-serve puts an LCCS-LSH index behind a network endpoint: a
// long-lived daemon that loads (or builds) an index over a dataset file
// and serves the HTTP/JSON API of internal/server — /v1/search,
// /v1/search/batch, /v1/insert, /v1/delete, /v1/stats, /v1/debug/slow,
// /healthz, /metrics — with bounded concurrency, an LRU result cache,
// and graceful shutdown.
//
// Usage:
//
//	lccs-serve -data sift.ds -metric euclidean -m 64 -shards 0 -addr :8080
//	lccs-serve -data sift.ds -dynamic -snapshot snap.lccs -snapshot-data snap.ds
//	lccs-serve -data snap.ds -index snap.lccs            # warm start, read-only
//	lccs-serve -data snap.ds -index snap.lccs -dynamic \
//	           -snapshot snap.lccs                       # warm start, writable
//	mkdir -p /var/lib/lccs && \
//	lccs-serve -data /var/lib/lccs -sync always          # durable data dir
//
// Backend selection: when -data names a DIRECTORY, the daemon runs in
// durable mode — the directory holds a manifest, snapshot container,
// and write-ahead log (see lccs.OpenDurable); boot recovers the
// previous state (the recovery summary is logged), /v1/insert and
// /v1/delete acknowledge only after the write is durable per -sync,
// and the index is checkpointed on a timer, when the WAL outgrows
// -checkpoint-wal-mb, and on graceful shutdown. A SIGKILLed durable
// daemon restarts with every acknowledged write intact.
//
// When -data names a dataset FILE, the pre-PR5 modes apply: -index
// loads a prebuilt LCCSPKG1/2/3 container (read-only, or writable with
// -dynamic); -dynamic alone builds a DynamicIndex (writes are held only
// in memory until the shutdown snapshot — use a durable data dir when
// acknowledged writes must survive a crash); otherwise a ShardedIndex
// is built with -shards shards.
//
// Observability: the daemon logs structured key=value (or JSON with
// -log-format json) records through log/slog; -trace-sample traces a
// fraction of searches into the per-stage span histograms and the
// /v1/debug/slow reservoir; -slow-threshold captures slow queries
// there too; -debug-addr serves net/http/pprof on a separate listener
// so profiling endpoints are never exposed on the public port.
//
// On SIGINT or SIGTERM the daemon flips /healthz to 503, drains
// in-flight requests, waits for any background delta build, and
// persists: durable mode checkpoints (snapshot + WAL truncation), the
// file modes honor -snapshot. A second signal forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lccs"
	"lccs/internal/dataset"
	"lccs/internal/engine"
	"lccs/internal/server"
)

// version is stamped at build time via -ldflags "-X main.version=...".
var version = "dev"

// logger is the process-wide structured logger, configured from
// -log-level and -log-format right after flag parsing.
var logger *slog.Logger

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataPath  = flag.String("data", "", "dataset file, or a directory for durable mode (required)")
		indexPath = flag.String("index", "", "load a prebuilt index container instead of building (file mode)")
		metric    = flag.String("metric", "euclidean", "euclidean | angular | hamming | jaccard")
		m         = flag.Int("m", 64, "hash-string length")
		probes    = flag.Int("probes", 1, "probing sequences per query (1 = single-probe)")
		lambda    = flag.Int("lambda", 100, "default candidate budget per query")
		seed      = flag.Uint64("seed", 1, "random seed")
		shards    = flag.Int("shards", 0, "shard count for the sharded backend (0 = GOMAXPROCS)")
		dynamic   = flag.Bool("dynamic", false, "serve a DynamicIndex backend (enables /v1/insert)")
		rebuildAt = flag.Int("rebuild-at", 0, "dynamic delta size that triggers a background shard build (0 = default)")
		quantize  = flag.String("quantize", "", "scan-time vector compression: sq8 (euclidean/angular only; exact re-rank keeps distances exact)")
		rerank    = flag.Int("rerank", 0, "quantized-scan survivors re-ranked with exact distances per query (0 = default)")

		maxInFlight  = flag.Int("max-inflight", 0, "concurrent searches (0 = GOMAXPROCS)")
		collInFlight = flag.Int("coll-max-inflight", 0, "per-collection concurrent requests before 503 (0 = no per-collection cap)")
		maxQueue     = flag.Int("max-queue", 0, "requests waiting for a slot before 503 (0 = 4x max-inflight, negative = no waiting)")
		timeout      = flag.Duration("timeout", 2*time.Second, "per-request admission deadline")
		cacheSize    = flag.Int("cache", 4096, "result cache entries (0 disables)")
		cacheQuant   = flag.Uint("cache-quant", 0, "low mantissa bits masked in cache keys (0 = exact)")
		maxBody      = flag.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")

		syncPolicy  = flag.String("sync", "always", "durable mode WAL sync policy: always | interval | none (none: acks survive a process kill but NOT an OS crash)")
		syncEvery   = flag.Duration("sync-interval", 50*time.Millisecond, "fsync period for -sync interval")
		walSegMB    = flag.Int64("wal-segment-mb", 64, "durable mode WAL segment size before rotation")
		ckptEvery   = flag.Duration("checkpoint-interval", 5*time.Minute, "durable mode: checkpoint at least this often (0 disables the timer)")
		ckptWALMB   = flag.Int64("checkpoint-wal-mb", 256, "durable mode: checkpoint when the WAL exceeds this size (0 disables the size trigger)")
		bootstrap   = flag.String("bootstrap", "", "durable mode: seed a fresh data dir from this dataset file (ignored once data exists)")
		snapPath    = flag.String("snapshot", "", "file mode: on shutdown, save the dynamic index here (LCCSPKG2/3)")
		snapDataPth = flag.String("snapshot-data", "", "file mode: on shutdown, save the snapshot's vectors here (default: <snapshot>.ds)")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
		drainDelay  = flag.Duration("drain-delay", 0, "window between /healthz going 503 and the listener closing; set to ≥ your load balancer's probe interval")

		logLevel    = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
		logFormat   = flag.String("log-format", "text", "log encoding: text | json")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
		traceSample = flag.Float64("trace-sample", 0, "fraction of searches traced into per-stage spans (0 = only explicit \"trace\":true requests)")
		slowThresh  = flag.Duration("slow-threshold", 250*time.Millisecond, "capture searches at or above this latency in /v1/debug/slow (0 disables)")
		slowLogSize = flag.Int("slow-log", 64, "slow-query ring capacity (0 = default 64)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("lccs-serve %s (%s)\n", version, runtime.Version())
		return
	}
	var err error
	logger, err = buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lccs-serve:", err)
		os.Exit(2)
	}
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := lccs.ParseMetric(*metric)
	if err != nil {
		fatal(err)
	}
	cfg := lccs.Config{Metric: kind, M: *m, Probes: *probes, Budget: *lambda, Seed: *seed,
		Quantize: *quantize, Rerank: *rerank}

	var (
		backend lccs.Searcher
		dyn     *lccs.DynamicIndex // file-mode lifecycle handle
		dur     *lccs.DurableIndex // durable-mode lifecycle handle
		eng     *engine.Engine     // collection registry (rooted in durable mode)
		ds      *dataset.Dataset   // file-mode dataset (snapshot output needs it)
	)
	if fi, err := os.Stat(*dataPath); err == nil && fi.IsDir() {
		dur, err = openDurable(*dataPath, cfg, *syncPolicy, *syncEvery, *walSegMB, *rebuildAt, *bootstrap)
		if err != nil {
			fatal(err)
		}
		backend = dur
		// Collections created over the API live under
		// <data>/collections/<name>/, each with its own WAL and
		// snapshot; the root data dir itself stays the "default"
		// collection. New collections inherit the daemon's flags unless
		// their create request overrides them.
		eng, err = engine.New(*dataPath, engine.Spec{
			Metric: *metric, M: *m, Probes: *probes, Budget: *lambda, Seed: *seed,
			Quantize: *quantize, Rerank: *rerank, RebuildAt: *rebuildAt,
			Sync: *syncPolicy, SyncIntervalMS: int(syncEvery.Milliseconds()),
			SegmentBytes: *walSegMB << 20,
		}, logger)
		if err != nil {
			fatal(err)
		}
		if *indexPath != "" || *snapPath != "" || *dynamic {
			logger.Warn("file-mode flags ignored with a durable data dir", "flags", "-index/-snapshot/-dynamic")
		}
	} else {
		ds, err = dataset.Load(*dataPath)
		if err != nil {
			fatal(err)
		}
		if kind == lccs.Angular {
			ds = ds.NormalizedCopy()
		}
		backend, dyn, err = buildBackend(ds, cfg, *indexPath, *dynamic, *shards, *rebuildAt)
		if err != nil {
			fatal(err)
		}
		if *snapPath != "" && dyn == nil {
			logger.Warn("-snapshot is only honored with -dynamic; ignoring")
		}
	}

	srv, err := server.New(server.Config{
		Backend:               backend,
		Engine:                eng,
		CollectionMaxInFlight: *collInFlight,
		MaxInFlight:           *maxInFlight,
		MaxQueue:              *maxQueue,
		Timeout:               *timeout,
		CacheSize:             *cacheSize,
		CacheQuantBits:        *cacheQuant,
		MaxBodyBytes:          *maxBody,
		TraceSample:           *traceSample,
		SlowThreshold:         *slowThresh,
		SlowLogSize:           *slowLogSize,
		Version:               version,
		Logger:                logger,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The pprof endpoints live on their own listener so profiling is
	// never reachable through the public port; the mux is explicit to
	// avoid hanging handlers off http.DefaultServeMux.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func(addr string) {
			logger.Info("pprof listening", "addr", addr)
			if err := http.ListenAndServe(addr, dmux); err != nil {
				logger.Error("pprof listener failed", "addr", addr, "err", err)
			}
		}(*debugAddr)
	}

	done := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "vectors", backend.Len(), "metric", string(kind),
			"version", version, "trace_sample", *traceSample, "slow_threshold", *slowThresh)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			done <- err
			return
		}
		done <- nil
	}()

	// Durable mode checkpoints in the background: on a timer and when
	// the WAL outgrows its budget, so neither recovery-replay time nor
	// the data directory grows unboundedly under steady churn.
	stopCkpt := make(chan struct{})
	if dur != nil {
		go checkpointLoop(dur, eng, *ckptEvery, *ckptWALMB<<20, stopCkpt)
	}

	// SIGINT and SIGTERM get the same graceful drain; a second signal
	// forces exit for operators who cannot wait out the drain.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err) // listener died before any signal
	case got := <-sig:
		logger.Info("draining; send the signal again to force exit", "signal", got.String())
		go func() {
			s := <-sig
			logger.Warn("forcing exit", "signal", s.String())
			os.Exit(1)
		}()
	}

	// Graceful shutdown: readiness drops first — and stays observable
	// for -drain-delay so load balancers can route away before the
	// listener closes — then connections drain, then the dynamic state
	// is quiesced and persisted.
	srv.SetDraining(true)
	if *drainDelay > 0 {
		time.Sleep(*drainDelay)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	if err := <-done; err != nil {
		logger.Error("serve", "err", err)
	}
	close(stopCkpt)
	switch {
	case dur != nil:
		// Checkpoint every API-created collection before the registry
		// closes them, so their next boot replays an empty WAL too.
		if eng != nil {
			for _, c := range eng.Loaded() {
				cd := c.Durable()
				if cd == nil || c.Adopted() {
					continue
				}
				cd.WaitRebuild()
				if err := checkpoint(cd, "drain "+c.Name()); err != nil {
					logger.Error("drain checkpoint", "collection", c.Name(), "err", err)
				}
			}
			if err := eng.Close(); err != nil {
				logger.Error("closing collections", "err", err)
			}
		}
		dur.WaitRebuild()
		if err := checkpoint(dur, "drain"); err != nil {
			fatal(fmt.Errorf("drain checkpoint: %w", err))
		}
		if err := dur.Close(); err != nil {
			fatal(fmt.Errorf("close: %w", err))
		}
	case dyn != nil:
		dyn.WaitRebuild()
		if *snapPath != "" {
			if err := snapshot(dyn, ds, *snapPath, *snapDataPth); err != nil {
				fatal(fmt.Errorf("snapshot: %w", err))
			}
		}
	}
	logger.Info("bye")
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug | info | warn | error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text | json", format)
	}
	return slog.New(h), nil
}

// openDurable opens the durable data directory (recovery details are
// logged by the library through the injected logger) and seeds a fresh
// directory from -bootstrap when given.
func openDurable(dir string, cfg lccs.Config, policy string, syncEvery time.Duration, segMB int64, rebuildAt int, bootstrap string) (*lccs.DurableIndex, error) {
	sp, err := lccs.ParseSyncPolicy(policy)
	if err != nil {
		return nil, err
	}
	dur, err := lccs.OpenDurable(dir, lccs.DurableConfig{
		Config:       cfg,
		Sync:         sp,
		SyncInterval: syncEvery,
		SegmentBytes: segMB << 20,
		RebuildAt:    rebuildAt,
		Logger:       logger,
	})
	if err != nil {
		return nil, err
	}
	if bootstrap != "" {
		rec := dur.Recovery()
		if dur.Len() > 0 || rec.Records > 0 || rec.SnapshotVectors > 0 {
			logger.Warn("-bootstrap ignored: data dir already holds data", "dir", dir)
			return dur, nil
		}
		if err := seed(dur, bootstrap, cfg.Metric); err != nil {
			dur.Close()
			return nil, fmt.Errorf("bootstrap: %w", err)
		}
	}
	return dur, nil
}

// seed ingests a dataset file through the durable write path and
// checkpoints, so a fresh data directory starts with an indexed,
// snapshotted corpus and an empty WAL.
func seed(dur *lccs.DurableIndex, path string, kind lccs.MetricKind) error {
	ds, err := dataset.Load(path)
	if err != nil {
		return err
	}
	if kind == lccs.Angular {
		ds = ds.NormalizedCopy()
	}
	start := time.Now()
	const chunk = 4096
	for lo := 0; lo < len(ds.Data); lo += chunk {
		hi := min(lo+chunk, len(ds.Data))
		if _, err := dur.AddBatch(ds.Data[lo:hi]); err != nil {
			return err
		}
	}
	dur.WaitRebuild()
	if err := checkpoint(dur, "bootstrap"); err != nil {
		return err
	}
	logger.Info("bootstrapped", "vectors", len(ds.Data), "path", path,
		"took", time.Since(start).Round(time.Millisecond))
	return nil
}

// checkpointLoop runs periodic and WAL-size-triggered checkpoints over
// the root durable index and every loaded durable collection until stop
// closes. Collections opened mid-flight (lazily or via the create API)
// join the sweep on the next tick.
func checkpointLoop(dur *lccs.DurableIndex, eng *engine.Engine, every time.Duration, walBytes int64, stop <-chan struct{}) {
	poll := 10 * time.Second
	if every > 0 && every < poll {
		poll = every
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-t.C:
			due := every > 0 && time.Since(last) >= every
			type target struct {
				d    *lccs.DurableIndex
				name string
			}
			targets := []target{{dur, "default"}}
			if eng != nil {
				for _, c := range eng.Loaded() {
					if cd := c.Durable(); cd != nil && !c.Adopted() {
						targets = append(targets, target{cd, c.Name()})
					}
				}
			}
			ran := false
			for _, tg := range targets {
				st := tg.d.WALStats()
				oversize := walBytes > 0 && st.Bytes >= walBytes
				if st.Depth == 0 || (!due && !oversize) {
					continue
				}
				reason := "interval " + tg.name
				if oversize {
					reason = fmt.Sprintf("wal size %dMB %s", st.Bytes>>20, tg.name)
				}
				if err := checkpoint(tg.d, reason); err != nil {
					logger.Error("checkpoint failed", "collection", tg.name, "err", err)
				}
				ran = true
			}
			if ran {
				last = time.Now()
			}
		case <-stop:
			return
		}
	}
}

// checkpoint runs one checkpoint and logs its outcome (phase timings
// are logged by the library through the injected logger).
func checkpoint(dur *lccs.DurableIndex, reason string) error {
	info, err := dur.Checkpoint()
	if err != nil {
		return err
	}
	switch {
	case info.Skipped:
		logger.Info("checkpoint skipped: nothing new to capture", "reason", reason)
	case info.Container == "":
		logger.Info("checkpoint: index empty, id watermark persisted", "reason", reason,
			"generation", info.Generation, "lsn", info.LSN, "took", info.Took.Round(time.Millisecond))
	default:
		logger.Info("checkpoint", "reason", reason, "generation", info.Generation,
			"live", info.Live, "tombstones", info.Tombstones, "container", info.Container,
			"lsn", info.LSN, "took", info.Took.Round(time.Millisecond))
	}
	return nil
}

// buildBackend selects and constructs the index facade behind the
// server in file mode. It returns the backend and, when dynamic, the
// concrete DynamicIndex for lifecycle calls (WaitRebuild, Snapshot).
func buildBackend(ds *dataset.Dataset, cfg lccs.Config, indexPath string, dynamic bool, shards, rebuildAt int) (lccs.Searcher, *lccs.DynamicIndex, error) {
	switch {
	case indexPath != "":
		start := time.Now()
		// Warm start stays flat: the dataset's contiguous block feeds the
		// container decode directly, no per-row re-packing.
		flat, err := ds.FlatData()
		if err != nil {
			return nil, nil, err
		}
		sx, err := lccs.LoadShardedStore(indexPath, flat)
		if err != nil {
			return nil, nil, err
		}
		logger.Info("loaded index", "path", indexPath, "shards", sx.Shards(), "vectors", sx.Len(),
			"took", time.Since(start).Round(time.Millisecond))
		if dynamic {
			// Keep a warm restart writable: the loaded shards become the
			// dynamic main, so snapshot → restart → insert keeps working
			// across any number of cycles.
			dyn, err := lccs.NewDynamicIndexFromShardedStore(sx, rebuildAt)
			if err != nil {
				return nil, nil, err
			}
			return dyn, dyn, nil
		}
		return sx, nil, nil
	case dynamic:
		start := time.Now()
		dyn, err := lccs.NewDynamicIndex(ds.Data, cfg, rebuildAt)
		if err != nil {
			return nil, nil, err
		}
		logger.Info("built dynamic index", "vectors", dyn.Len(),
			"took", time.Since(start).Round(time.Millisecond))
		return dyn, dyn, nil
	default:
		start := time.Now()
		sx, err := lccs.NewShardedIndex(ds.Data, cfg, shards)
		if err != nil {
			return nil, nil, err
		}
		logger.Info("built sharded index", "shards", sx.Shards(), "vectors", sx.Len(),
			"took", time.Since(start).Round(time.Millisecond))
		return sx, nil, nil
	}
}

// snapshot persists the dynamic index (existing shards plus a shard
// built over the buffer) and all its vectors, so a warm restart via
// -data <snapDataPath> -index <snapPath> preserves every insert — and
// every delete: Snapshot compacts buffered tombstones away, and Save
// writes the id map plus remaining tombstones into the LCCSPKG3
// container whenever deletion state exists.
func snapshot(dyn *lccs.DynamicIndex, ds *dataset.Dataset, snapPath, snapDataPath string) error {
	if snapDataPath == "" {
		snapDataPath = snapPath + ".ds"
	}
	vectors, sx, err := dyn.Snapshot()
	if err != nil {
		return err
	}
	if err := sx.Save(snapPath); err != nil {
		return err
	}
	out := &dataset.Dataset{
		Name:    ds.Name,
		Kind:    ds.Kind,
		Dim:     ds.Dim,
		Data:    vectors,
		Queries: ds.Queries,
	}
	if err := out.Save(snapDataPath); err != nil {
		return err
	}
	logger.Info("snapshot saved", "live", sx.Len(), "tombstones", sx.Deleted(),
		"shards", sx.Shards(), "index", snapPath, "data", snapDataPath)
	return nil
}

func fatal(err error) {
	if logger != nil {
		logger.Error("exiting", "err", err)
	} else {
		fmt.Fprintln(os.Stderr, "lccs-serve:", err)
	}
	os.Exit(1)
}
