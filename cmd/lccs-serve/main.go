// Command lccs-serve puts an LCCS-LSH index behind a network endpoint: a
// long-lived daemon that loads (or builds) an index over a dataset file
// and serves the HTTP/JSON API of internal/server — /v1/search,
// /v1/search/batch, /v1/insert, /v1/delete, /v1/stats, /healthz,
// /metrics — with bounded concurrency, an LRU result cache, and
// graceful shutdown.
//
// Usage:
//
//	lccs-serve -data sift.ds -metric euclidean -m 64 -shards 0 -addr :8080
//	lccs-serve -data sift.ds -dynamic -snapshot snap.lccs -snapshot-data snap.ds
//	lccs-serve -data snap.ds -index snap.lccs            # warm start, read-only
//	lccs-serve -data snap.ds -index snap.lccs -dynamic \
//	           -snapshot snap.lccs                       # warm start, writable
//
// Backend selection: -index loads a prebuilt LCCSPKG1/2/3 container
// (skipping the build) — read-only by default, or wrapped as a writable
// DynamicIndex when combined with -dynamic; -dynamic alone builds a
// DynamicIndex and enables /v1/insert and /v1/delete; otherwise a
// ShardedIndex is built with -shards shards. On SIGINT/SIGTERM the
// daemon flips /healthz to 503, drains in-flight requests, waits for
// any background delta build, and — when -snapshot is set on a dynamic
// backend — persists the index (including buffered inserts AND the
// deletion state: the stable-id map plus pending tombstones, in the
// LCCSPKG3 container) together with its vectors for a warm restart.
// Deleted ids therefore stay deleted across restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lccs"
	"lccs/internal/dataset"
	"lccs/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataPath  = flag.String("data", "", "dataset file from lccs-datagen (required)")
		indexPath = flag.String("index", "", "load a prebuilt index container instead of building")
		metric    = flag.String("metric", "euclidean", "euclidean | angular | hamming | jaccard")
		m         = flag.Int("m", 64, "hash-string length")
		probes    = flag.Int("probes", 1, "probing sequences per query (1 = single-probe)")
		lambda    = flag.Int("lambda", 100, "default candidate budget per query")
		seed      = flag.Uint64("seed", 1, "random seed")
		shards    = flag.Int("shards", 0, "shard count for the sharded backend (0 = GOMAXPROCS)")
		dynamic   = flag.Bool("dynamic", false, "serve a DynamicIndex backend (enables /v1/insert)")
		rebuildAt = flag.Int("rebuild-at", 0, "dynamic delta size that triggers a background shard build (0 = default)")

		maxInFlight = flag.Int("max-inflight", 0, "concurrent searches (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "requests waiting for a slot before 503 (0 = 4x max-inflight, negative = no waiting)")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request admission deadline")
		cacheSize   = flag.Int("cache", 4096, "result cache entries (0 disables)")
		cacheQuant  = flag.Uint("cache-quant", 0, "low mantissa bits masked in cache keys (0 = exact)")
		maxBody     = flag.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")

		snapPath     = flag.String("snapshot", "", "on shutdown, save the dynamic index here (LCCSPKG2)")
		snapDataPath = flag.String("snapshot-data", "", "on shutdown, save the snapshot's vectors here (default: <snapshot>.ds)")
		drainWait    = flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
		drainDelay   = flag.Duration("drain-delay", 0, "window between /healthz going 503 and the listener closing; set to ≥ your load balancer's probe interval")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := lccs.ParseMetric(*metric)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.Load(*dataPath)
	if err != nil {
		fatal(err)
	}
	if kind == lccs.Angular {
		ds = ds.NormalizedCopy()
	}
	cfg := lccs.Config{Metric: kind, M: *m, Probes: *probes, Budget: *lambda, Seed: *seed}

	backend, dyn, err := buildBackend(ds, cfg, *indexPath, *dynamic, *shards, *rebuildAt)
	if err != nil {
		fatal(err)
	}
	if *snapPath != "" && dyn == nil {
		log.Printf("warning: -snapshot is only honored with -dynamic; ignoring")
	}

	srv, err := server.New(server.Config{
		Backend:        backend,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		Timeout:        *timeout,
		CacheSize:      *cacheSize,
		CacheQuantBits: *cacheQuant,
		MaxBodyBytes:   *maxBody,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan error, 1)
	go func() {
		log.Printf("lccs-serve: listening on %s (n=%d, metric=%s)", *addr, backend.Len(), kind)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			done <- err
			return
		}
		done <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err) // listener died before any signal
	case got := <-sig:
		log.Printf("lccs-serve: %v: draining", got)
	}

	// Graceful shutdown: readiness drops first — and stays observable
	// for -drain-delay so load balancers can route away before the
	// listener closes — then connections drain, then the dynamic state
	// is quiesced and snapshotted.
	srv.SetDraining(true)
	if *drainDelay > 0 {
		time.Sleep(*drainDelay)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("lccs-serve: shutdown: %v", err)
	}
	if err := <-done; err != nil {
		log.Printf("lccs-serve: serve: %v", err)
	}
	if dyn != nil {
		dyn.WaitRebuild()
		if *snapPath != "" {
			if err := snapshot(dyn, ds, *snapPath, *snapDataPath); err != nil {
				fatal(fmt.Errorf("snapshot: %w", err))
			}
		}
	}
	log.Printf("lccs-serve: bye")
}

// buildBackend selects and constructs the index facade behind the
// server. It returns the backend and, when dynamic, the concrete
// DynamicIndex for lifecycle calls (WaitRebuild, Snapshot).
func buildBackend(ds *dataset.Dataset, cfg lccs.Config, indexPath string, dynamic bool, shards, rebuildAt int) (lccs.Searcher, *lccs.DynamicIndex, error) {
	switch {
	case indexPath != "":
		start := time.Now()
		sx, err := lccs.LoadSharded(indexPath, ds.Data)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("lccs-serve: loaded %s (%d shards over %d vectors) in %v",
			indexPath, sx.Shards(), sx.Len(), time.Since(start).Round(time.Millisecond))
		if dynamic {
			// Keep a warm restart writable: the loaded shards become the
			// dynamic main, so snapshot → restart → insert keeps working
			// across any number of cycles.
			dyn, err := lccs.NewDynamicIndexFromSharded(sx, ds.Data, rebuildAt)
			if err != nil {
				return nil, nil, err
			}
			return dyn, dyn, nil
		}
		return sx, nil, nil
	case dynamic:
		start := time.Now()
		dyn, err := lccs.NewDynamicIndex(ds.Data, cfg, rebuildAt)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("lccs-serve: built dynamic index over %d vectors in %v",
			dyn.Len(), time.Since(start).Round(time.Millisecond))
		return dyn, dyn, nil
	default:
		start := time.Now()
		sx, err := lccs.NewShardedIndex(ds.Data, cfg, shards)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("lccs-serve: built %d shards over %d vectors in %v",
			sx.Shards(), sx.Len(), time.Since(start).Round(time.Millisecond))
		return sx, nil, nil
	}
}

// snapshot persists the dynamic index (existing shards plus a shard
// built over the buffer) and all its vectors, so a warm restart via
// -data <snapDataPath> -index <snapPath> preserves every insert — and
// every delete: Snapshot compacts buffered tombstones away, and Save
// writes the id map plus remaining tombstones into the LCCSPKG3
// container whenever deletion state exists.
func snapshot(dyn *lccs.DynamicIndex, ds *dataset.Dataset, snapPath, snapDataPath string) error {
	if snapDataPath == "" {
		snapDataPath = snapPath + ".ds"
	}
	vectors, sx, err := dyn.Snapshot()
	if err != nil {
		return err
	}
	if err := sx.Save(snapPath); err != nil {
		return err
	}
	out := &dataset.Dataset{
		Name:    ds.Name,
		Kind:    ds.Kind,
		Dim:     ds.Dim,
		Data:    vectors,
		Queries: ds.Queries,
	}
	if err := out.Save(snapDataPath); err != nil {
		return err
	}
	log.Printf("lccs-serve: snapshot: %d live vectors, %d tombstones (%d shards) → %s + %s",
		sx.Len(), sx.Deleted(), sx.Shards(), snapPath, snapDataPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lccs-serve:", err)
	os.Exit(1)
}
