// Command lccs-serve puts an LCCS-LSH index behind a network endpoint: a
// long-lived daemon that loads (or builds) an index over a dataset file
// and serves the HTTP/JSON API of internal/server — /v1/search,
// /v1/search/batch, /v1/insert, /v1/delete, /v1/stats, /healthz,
// /metrics — with bounded concurrency, an LRU result cache, and
// graceful shutdown.
//
// Usage:
//
//	lccs-serve -data sift.ds -metric euclidean -m 64 -shards 0 -addr :8080
//	lccs-serve -data sift.ds -dynamic -snapshot snap.lccs -snapshot-data snap.ds
//	lccs-serve -data snap.ds -index snap.lccs            # warm start, read-only
//	lccs-serve -data snap.ds -index snap.lccs -dynamic \
//	           -snapshot snap.lccs                       # warm start, writable
//	mkdir -p /var/lib/lccs && \
//	lccs-serve -data /var/lib/lccs -sync always          # durable data dir
//
// Backend selection: when -data names a DIRECTORY, the daemon runs in
// durable mode — the directory holds a manifest, snapshot container,
// and write-ahead log (see lccs.OpenDurable); boot recovers the
// previous state (the recovery summary is logged), /v1/insert and
// /v1/delete acknowledge only after the write is durable per -sync,
// and the index is checkpointed on a timer, when the WAL outgrows
// -checkpoint-wal-mb, and on graceful shutdown. A SIGKILLed durable
// daemon restarts with every acknowledged write intact.
//
// When -data names a dataset FILE, the pre-PR5 modes apply: -index
// loads a prebuilt LCCSPKG1/2/3 container (read-only, or writable with
// -dynamic); -dynamic alone builds a DynamicIndex (writes are held only
// in memory until the shutdown snapshot — use a durable data dir when
// acknowledged writes must survive a crash); otherwise a ShardedIndex
// is built with -shards shards.
//
// On SIGINT or SIGTERM the daemon flips /healthz to 503, drains
// in-flight requests, waits for any background delta build, and
// persists: durable mode checkpoints (snapshot + WAL truncation), the
// file modes honor -snapshot. A second signal forces immediate exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lccs"
	"lccs/internal/dataset"
	"lccs/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataPath  = flag.String("data", "", "dataset file, or a directory for durable mode (required)")
		indexPath = flag.String("index", "", "load a prebuilt index container instead of building (file mode)")
		metric    = flag.String("metric", "euclidean", "euclidean | angular | hamming | jaccard")
		m         = flag.Int("m", 64, "hash-string length")
		probes    = flag.Int("probes", 1, "probing sequences per query (1 = single-probe)")
		lambda    = flag.Int("lambda", 100, "default candidate budget per query")
		seed      = flag.Uint64("seed", 1, "random seed")
		shards    = flag.Int("shards", 0, "shard count for the sharded backend (0 = GOMAXPROCS)")
		dynamic   = flag.Bool("dynamic", false, "serve a DynamicIndex backend (enables /v1/insert)")
		rebuildAt = flag.Int("rebuild-at", 0, "dynamic delta size that triggers a background shard build (0 = default)")

		maxInFlight = flag.Int("max-inflight", 0, "concurrent searches (0 = GOMAXPROCS)")
		maxQueue    = flag.Int("max-queue", 0, "requests waiting for a slot before 503 (0 = 4x max-inflight, negative = no waiting)")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-request admission deadline")
		cacheSize   = flag.Int("cache", 4096, "result cache entries (0 disables)")
		cacheQuant  = flag.Uint("cache-quant", 0, "low mantissa bits masked in cache keys (0 = exact)")
		maxBody     = flag.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")

		syncPolicy  = flag.String("sync", "always", "durable mode WAL sync policy: always | interval | none (none: acks survive a process kill but NOT an OS crash)")
		syncEvery   = flag.Duration("sync-interval", 50*time.Millisecond, "fsync period for -sync interval")
		walSegMB    = flag.Int64("wal-segment-mb", 64, "durable mode WAL segment size before rotation")
		ckptEvery   = flag.Duration("checkpoint-interval", 5*time.Minute, "durable mode: checkpoint at least this often (0 disables the timer)")
		ckptWALMB   = flag.Int64("checkpoint-wal-mb", 256, "durable mode: checkpoint when the WAL exceeds this size (0 disables the size trigger)")
		bootstrap   = flag.String("bootstrap", "", "durable mode: seed a fresh data dir from this dataset file (ignored once data exists)")
		snapPath    = flag.String("snapshot", "", "file mode: on shutdown, save the dynamic index here (LCCSPKG2/3)")
		snapDataPth = flag.String("snapshot-data", "", "file mode: on shutdown, save the snapshot's vectors here (default: <snapshot>.ds)")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
		drainDelay  = flag.Duration("drain-delay", 0, "window between /healthz going 503 and the listener closing; set to ≥ your load balancer's probe interval")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := lccs.ParseMetric(*metric)
	if err != nil {
		fatal(err)
	}
	cfg := lccs.Config{Metric: kind, M: *m, Probes: *probes, Budget: *lambda, Seed: *seed}

	var (
		backend lccs.Searcher
		dyn     *lccs.DynamicIndex // file-mode lifecycle handle
		dur     *lccs.DurableIndex // durable-mode lifecycle handle
		ds      *dataset.Dataset   // file-mode dataset (snapshot output needs it)
	)
	if fi, err := os.Stat(*dataPath); err == nil && fi.IsDir() {
		dur, err = openDurable(*dataPath, cfg, *syncPolicy, *syncEvery, *walSegMB, *rebuildAt, *bootstrap)
		if err != nil {
			fatal(err)
		}
		backend = dur
		if *indexPath != "" || *snapPath != "" || *dynamic {
			log.Printf("warning: -index/-snapshot/-dynamic are file-mode flags; ignored with a durable data dir")
		}
	} else {
		ds, err = dataset.Load(*dataPath)
		if err != nil {
			fatal(err)
		}
		if kind == lccs.Angular {
			ds = ds.NormalizedCopy()
		}
		backend, dyn, err = buildBackend(ds, cfg, *indexPath, *dynamic, *shards, *rebuildAt)
		if err != nil {
			fatal(err)
		}
		if *snapPath != "" && dyn == nil {
			log.Printf("warning: -snapshot is only honored with -dynamic; ignoring")
		}
	}

	srv, err := server.New(server.Config{
		Backend:        backend,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		Timeout:        *timeout,
		CacheSize:      *cacheSize,
		CacheQuantBits: *cacheQuant,
		MaxBodyBytes:   *maxBody,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan error, 1)
	go func() {
		log.Printf("lccs-serve: listening on %s (n=%d, metric=%s)", *addr, backend.Len(), kind)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			done <- err
			return
		}
		done <- nil
	}()

	// Durable mode checkpoints in the background: on a timer and when
	// the WAL outgrows its budget, so neither recovery-replay time nor
	// the data directory grows unboundedly under steady churn.
	stopCkpt := make(chan struct{})
	if dur != nil {
		go checkpointLoop(dur, *ckptEvery, *ckptWALMB<<20, stopCkpt)
	}

	// SIGINT and SIGTERM get the same graceful drain; a second signal
	// forces exit for operators who cannot wait out the drain.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err) // listener died before any signal
	case got := <-sig:
		log.Printf("lccs-serve: %v: draining (send again to force exit)", got)
		go func() {
			s := <-sig
			log.Printf("lccs-serve: %v: forcing exit", s)
			os.Exit(1)
		}()
	}

	// Graceful shutdown: readiness drops first — and stays observable
	// for -drain-delay so load balancers can route away before the
	// listener closes — then connections drain, then the dynamic state
	// is quiesced and persisted.
	srv.SetDraining(true)
	if *drainDelay > 0 {
		time.Sleep(*drainDelay)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("lccs-serve: shutdown: %v", err)
	}
	if err := <-done; err != nil {
		log.Printf("lccs-serve: serve: %v", err)
	}
	close(stopCkpt)
	switch {
	case dur != nil:
		dur.WaitRebuild()
		if err := checkpoint(dur, "drain"); err != nil {
			fatal(fmt.Errorf("drain checkpoint: %w", err))
		}
		if err := dur.Close(); err != nil {
			fatal(fmt.Errorf("close: %w", err))
		}
	case dyn != nil:
		dyn.WaitRebuild()
		if *snapPath != "" {
			if err := snapshot(dyn, ds, *snapPath, *snapDataPth); err != nil {
				fatal(fmt.Errorf("snapshot: %w", err))
			}
		}
	}
	log.Printf("lccs-serve: bye")
}

// openDurable opens the durable data directory, logs the recovery
// summary, and seeds a fresh directory from -bootstrap when given.
func openDurable(dir string, cfg lccs.Config, policy string, syncEvery time.Duration, segMB int64, rebuildAt int, bootstrap string) (*lccs.DurableIndex, error) {
	sp, err := lccs.ParseSyncPolicy(policy)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	dur, err := lccs.OpenDurable(dir, lccs.DurableConfig{
		Config:       cfg,
		Sync:         sp,
		SyncInterval: syncEvery,
		SegmentBytes: segMB << 20,
		RebuildAt:    rebuildAt,
	})
	if err != nil {
		return nil, err
	}
	rec := dur.Recovery()
	log.Printf("lccs-serve: recovered %s in %v: snapshot %d vectors, %d WAL segments replayed, %d records applied (%d already checkpointed, %dB torn tail discarded); %d live vectors, sync=%s",
		dir, time.Since(start).Round(time.Millisecond), rec.SnapshotVectors, rec.Segments,
		rec.Records, rec.Skipped, rec.TornBytes, dur.Len(), sp)
	if bootstrap != "" {
		if dur.Len() > 0 || rec.Records > 0 || rec.SnapshotVectors > 0 {
			log.Printf("lccs-serve: -bootstrap ignored: %s already holds data", dir)
			return dur, nil
		}
		if err := seed(dur, bootstrap, cfg.Metric); err != nil {
			dur.Close()
			return nil, fmt.Errorf("bootstrap: %w", err)
		}
	}
	return dur, nil
}

// seed ingests a dataset file through the durable write path and
// checkpoints, so a fresh data directory starts with an indexed,
// snapshotted corpus and an empty WAL.
func seed(dur *lccs.DurableIndex, path string, kind lccs.MetricKind) error {
	ds, err := dataset.Load(path)
	if err != nil {
		return err
	}
	if kind == lccs.Angular {
		ds = ds.NormalizedCopy()
	}
	start := time.Now()
	const chunk = 4096
	for lo := 0; lo < len(ds.Data); lo += chunk {
		hi := min(lo+chunk, len(ds.Data))
		if _, err := dur.AddBatch(ds.Data[lo:hi]); err != nil {
			return err
		}
	}
	dur.WaitRebuild()
	if err := checkpoint(dur, "bootstrap"); err != nil {
		return err
	}
	log.Printf("lccs-serve: bootstrapped %d vectors from %s in %v",
		len(ds.Data), path, time.Since(start).Round(time.Millisecond))
	return nil
}

// checkpointLoop runs periodic and WAL-size-triggered checkpoints until
// stop closes.
func checkpointLoop(dur *lccs.DurableIndex, every time.Duration, walBytes int64, stop <-chan struct{}) {
	poll := 10 * time.Second
	if every > 0 && every < poll {
		poll = every
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-t.C:
			st := dur.WALStats()
			due := every > 0 && time.Since(last) >= every
			oversize := walBytes > 0 && st.Bytes >= walBytes
			if st.Depth == 0 || (!due && !oversize) {
				continue
			}
			reason := "interval"
			if oversize {
				reason = fmt.Sprintf("wal size %dMB", st.Bytes>>20)
			}
			if err := checkpoint(dur, reason); err != nil {
				log.Printf("lccs-serve: checkpoint: %v", err)
			}
			last = time.Now()
		case <-stop:
			return
		}
	}
}

// checkpoint runs one checkpoint and logs its outcome.
func checkpoint(dur *lccs.DurableIndex, reason string) error {
	info, err := dur.Checkpoint()
	if err != nil {
		return err
	}
	switch {
	case info.Skipped:
		log.Printf("lccs-serve: checkpoint (%s): skipped, nothing new to capture", reason)
	case info.Container == "":
		log.Printf("lccs-serve: checkpoint (%s): gen %d, index empty (id watermark persisted), WAL truncated through LSN %d in %v",
			reason, info.Generation, info.LSN, info.Took.Round(time.Millisecond))
	default:
		log.Printf("lccs-serve: checkpoint (%s): gen %d, %d live vectors, %d tombstones → %s, WAL truncated through LSN %d in %v",
			reason, info.Generation, info.Live, info.Tombstones, info.Container, info.LSN, info.Took.Round(time.Millisecond))
	}
	return nil
}

// buildBackend selects and constructs the index facade behind the
// server in file mode. It returns the backend and, when dynamic, the
// concrete DynamicIndex for lifecycle calls (WaitRebuild, Snapshot).
func buildBackend(ds *dataset.Dataset, cfg lccs.Config, indexPath string, dynamic bool, shards, rebuildAt int) (lccs.Searcher, *lccs.DynamicIndex, error) {
	switch {
	case indexPath != "":
		start := time.Now()
		sx, err := lccs.LoadSharded(indexPath, ds.Data)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("lccs-serve: loaded %s (%d shards over %d vectors) in %v",
			indexPath, sx.Shards(), sx.Len(), time.Since(start).Round(time.Millisecond))
		if dynamic {
			// Keep a warm restart writable: the loaded shards become the
			// dynamic main, so snapshot → restart → insert keeps working
			// across any number of cycles.
			dyn, err := lccs.NewDynamicIndexFromSharded(sx, ds.Data, rebuildAt)
			if err != nil {
				return nil, nil, err
			}
			return dyn, dyn, nil
		}
		return sx, nil, nil
	case dynamic:
		start := time.Now()
		dyn, err := lccs.NewDynamicIndex(ds.Data, cfg, rebuildAt)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("lccs-serve: built dynamic index over %d vectors in %v",
			dyn.Len(), time.Since(start).Round(time.Millisecond))
		return dyn, dyn, nil
	default:
		start := time.Now()
		sx, err := lccs.NewShardedIndex(ds.Data, cfg, shards)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("lccs-serve: built %d shards over %d vectors in %v",
			sx.Shards(), sx.Len(), time.Since(start).Round(time.Millisecond))
		return sx, nil, nil
	}
}

// snapshot persists the dynamic index (existing shards plus a shard
// built over the buffer) and all its vectors, so a warm restart via
// -data <snapDataPath> -index <snapPath> preserves every insert — and
// every delete: Snapshot compacts buffered tombstones away, and Save
// writes the id map plus remaining tombstones into the LCCSPKG3
// container whenever deletion state exists.
func snapshot(dyn *lccs.DynamicIndex, ds *dataset.Dataset, snapPath, snapDataPath string) error {
	if snapDataPath == "" {
		snapDataPath = snapPath + ".ds"
	}
	vectors, sx, err := dyn.Snapshot()
	if err != nil {
		return err
	}
	if err := sx.Save(snapPath); err != nil {
		return err
	}
	out := &dataset.Dataset{
		Name:    ds.Name,
		Kind:    ds.Kind,
		Dim:     ds.Dim,
		Data:    vectors,
		Queries: ds.Queries,
	}
	if err := out.Save(snapDataPath); err != nil {
		return err
	}
	log.Printf("lccs-serve: snapshot: %d live vectors, %d tombstones (%d shards) → %s + %s",
		sx.Len(), sx.Deleted(), sx.Shards(), snapPath, snapDataPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lccs-serve:", err)
	os.Exit(1)
}
