// Command lccs-query builds an LCCS-LSH index over a dataset file written
// by lccs-datagen and answers the file's queries, reporting per-query
// results and, against a ground-truth file, recall and ratio.
//
// Usage:
//
//	lccs-query -data sift.ds -metric euclidean -m 128 -lambda 100 -k 10
//	lccs-query -data glove.ds -metric angular -m 64 -probes 129 -truth glove.gt
//	lccs-query -data sets.ds -metric jaccard -m 96
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lccs"
	"lccs/internal/dataset"
	"lccs/internal/eval"
	"lccs/internal/pqueue"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file from lccs-datagen")
		metric    = flag.String("metric", "euclidean", "euclidean | angular | hamming | jaccard")
		m         = flag.Int("m", 64, "hash-string length")
		probes    = flag.Int("probes", 1, "probing sequences per query (1 = single-probe)")
		lambda    = flag.Int("lambda", 100, "candidate budget per query")
		k         = flag.Int("k", 10, "neighbors per query")
		truthPath = flag.String("truth", "", "optional ground-truth file for recall/ratio")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "print per-query neighbor lists")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := lccs.ParseMetric(*metric)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.Load(*dataPath)
	if err != nil {
		fatal(err)
	}
	if kind == lccs.Angular {
		ds = ds.NormalizedCopy()
	}
	start := time.Now()
	ix, err := lccs.NewIndex(ds.Data, lccs.Config{
		Metric: kind,
		M:      *m,
		Probes: *probes,
		Budget: *lambda,
		Seed:   *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("index: n=%d d=%d m=%d probes=%d size=%.1fMB built in %.2fs\n",
		ix.Len(), ds.Dim, ix.M(), *probes, float64(ix.Bytes())/(1<<20), time.Since(start).Seconds())

	var gt *dataset.GroundTruth
	if *truthPath != "" {
		if gt, err = dataset.LoadTruth(*truthPath); err != nil {
			fatal(err)
		}
		if len(gt.Neighbors) != len(ds.Queries) {
			fatal(fmt.Errorf("ground truth has %d queries, dataset has %d", len(gt.Neighbors), len(ds.Queries)))
		}
	}

	var totalRecall, totalRatio float64
	var totalTime time.Duration
	for qi, q := range ds.Queries {
		qs := time.Now()
		res, err := ix.Search(q, *k)
		if err != nil {
			fatal(err)
		}
		totalTime += time.Since(qs)
		if *verbose {
			fmt.Printf("query %d:\n", qi)
			for rank, r := range res {
				fmt.Printf("  #%d id=%d dist=%.4f\n", rank+1, r.ID, r.Dist)
			}
		}
		if gt != nil {
			got := toNeighbors(res)
			want := gt.Neighbors[qi]
			if len(want) > *k {
				want = want[:*k]
			}
			totalRecall += eval.Recall(got, want)
			totalRatio += eval.Ratio(got, want)
		}
	}
	nq := float64(len(ds.Queries))
	fmt.Printf("queries: %d, avg time %.3fms\n", len(ds.Queries), totalTime.Seconds()*1000/nq)
	if gt != nil {
		fmt.Printf("recall@%d = %.2f%%, overall ratio = %.4f\n", *k, 100*totalRecall/nq, totalRatio/nq)
	}
}

func toNeighbors(res []lccs.Neighbor) []pqueue.Neighbor {
	out := make([]pqueue.Neighbor, len(res))
	for i, r := range res {
		out[i] = pqueue.Neighbor{ID: r.ID, Dist: r.Dist}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lccs-query:", err)
	os.Exit(1)
}
