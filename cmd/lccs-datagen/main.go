// Command lccs-datagen generates the synthetic dataset analogues (and
// optionally their exact ground truth) to disk, so that repeated benchmark
// runs skip regeneration.
//
// Usage:
//
//	lccs-datagen -preset sift -n 100000 -nq 100 -out sift.ds
//	lccs-datagen -preset glove -n 50000 -out glove.ds -truth glove.gt -k 10 -metric angular
//	lccs-datagen -inspect sift.ds
package main

import (
	"flag"
	"fmt"
	"os"

	"lccs"
	"lccs/internal/baseline/scan"
	"lccs/internal/dataset"
	"lccs/internal/vec"
)

func main() {
	var (
		preset  = flag.String("preset", "", "dataset preset: msong, sift, gist, glove, deep")
		n       = flag.Int("n", 100000, "data points")
		nq      = flag.Int("nq", 100, "query points")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "output dataset file")
		truth   = flag.String("truth", "", "also compute exact ground truth to this file")
		k       = flag.Int("k", 10, "ground-truth neighbors per query")
		metric  = flag.String("metric", "euclidean", "ground-truth metric: euclidean | angular | hamming | jaccard")
		inspect = flag.String("inspect", "", "print statistics of an existing dataset file and exit")
	)
	flag.Parse()

	if *inspect != "" {
		ds, err := dataset.Load(*inspect)
		if err != nil {
			fatal(err)
		}
		st := ds.TableStats()
		fmt.Printf("%-8s objects=%d queries=%d d=%d size=%.1fMB type=%s\n",
			st.Name, st.Objects, st.Queries, st.Dim, float64(st.SizeBytes)/(1<<20), st.Kind)
		return
	}

	if *preset == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := dataset.Preset(*preset, *n, *nq, *seed)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		fatal(err)
	}
	if err := ds.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: n=%d nq=%d d=%d\n", *out, len(ds.Data), len(ds.Queries), ds.Dim)

	if *truth != "" {
		kind, err := lccs.ParseMetric(*metric)
		if err != nil {
			fatal(err)
		}
		// Every canonical MetricKind name is registered in vec.
		m := vec.MetricByName(string(kind))
		work := ds
		if m.Name() == "angular" {
			work = ds.NormalizedCopy()
		}
		gt := &dataset.GroundTruth{
			K:         *k,
			Neighbors: scan.SearchAll(work.Data, work.Queries, *k, m),
		}
		if err := gt.Save(*truth); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: exact %d-NN under %s for %d queries\n", *truth, *k, m.Name(), len(gt.Neighbors))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lccs-datagen:", err)
	os.Exit(1)
}
