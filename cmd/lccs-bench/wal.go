package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"lccs"
)

// walBench measures the durable ingest path: insert throughput and ack
// latency per WAL sync policy (concurrent writers share group-committed
// fsyncs), then the crash-recovery cost — the time to replay the whole
// log into a fresh index, exactly what a SIGKILLed server pays on the
// next boot.
func walBench(n, clients int, seed uint64, kind lccs.MetricKind) error {
	runs, order, err := walRuns(n, clients, seed, kind)
	if err != nil {
		return err
	}
	fmt.Printf("# wal bench: n=%d clients=%d metric=%s\n", n, clients, kind)
	for _, name := range order {
		r := runs[name]
		fmt.Printf("%-14s %10.0f ops/s  p50 %8.1fµs  p99 %8.1fµs  %s\n",
			name, r.QPS, r.P50Micros, r.P99Micros, r.Note)
	}
	return nil
}

// walRuns produces the machine-readable wal experiment set shared by
// -exp wal and -json: one ingest run per sync policy plus the recovery
// replay of the sync=always log.
func walRuns(n, clients int, seed uint64, kind lccs.MetricKind) (map[string]RunReport, []string, error) {
	data, _ := benchWorkload(n, 1, seed, kind)
	cfg := lccs.Config{Metric: kind, M: 16, Seed: seed}
	runs := map[string]RunReport{}
	order := []string{"wal_always", "wal_interval", "wal_none", "wal_recovery"}

	policies := []lccs.SyncPolicy{lccs.SyncAlways, lccs.SyncInterval, lccs.SyncNone}
	var alwaysDir string
	for _, policy := range policies {
		dir, err := os.MkdirTemp("", "lccs-walbench")
		if err != nil {
			return nil, nil, err
		}
		r, di, err := ingestRun(dir, data, policy, clients, cfg)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		if policy == lccs.SyncAlways {
			// Keep the always log for the recovery run — abandoned
			// without Close or Checkpoint, as a crash would leave it.
			di.WaitRebuild()
			alwaysDir = dir
		} else {
			di.Close()
			os.RemoveAll(dir)
		}
		runs["wal_"+policy.String()] = r
	}
	defer os.RemoveAll(alwaysDir)

	start := time.Now()
	di, err := lccs.OpenDurable(alwaysDir, lccs.DurableConfig{Config: cfg, Sync: lccs.SyncAlways})
	if err != nil {
		return nil, nil, err
	}
	defer di.Close()
	openTime := time.Since(start)
	rec := di.Recovery()
	if int(rec.Records) != len(data) {
		return nil, nil, fmt.Errorf("recovery replayed %d records, expected %d", rec.Records, len(data))
	}
	runs["wal_recovery"] = RunReport{
		QPS:          float64(rec.Records) / rec.Duration.Seconds(),
		BuildSeconds: openTime.Seconds(),
		Note: fmt.Sprintf("replayed %d records from %d segments in %v (full open %v)",
			rec.Records, rec.Segments, rec.Duration.Round(time.Millisecond), openTime.Round(time.Millisecond)),
	}
	return runs, order, nil
}

// ingestRun drives concurrent durable inserts and reports client-side
// ack throughput and latency percentiles, plus process-wide heap
// traffic per insert (background delta builds included).
func ingestRun(dir string, data [][]float32, policy lccs.SyncPolicy, clients int, cfg lccs.Config) (RunReport, *lccs.DurableIndex, error) {
	di, err := lccs.OpenDurable(dir, lccs.DurableConfig{Config: cfg, Sync: policy})
	if err != nil {
		return RunReport{}, nil, err
	}
	if clients < 1 {
		clients = 1
	}
	lat := make([]float64, len(data))
	errs := make([]error, clients)
	var next int
	var mu sync.Mutex
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(data) {
					return
				}
				t0 := time.Now()
				if _, err := di.Add(data[i]); err != nil {
					errs[c] = err
					return
				}
				lat[i] = time.Since(t0).Seconds()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			di.Close()
			return RunReport{}, nil, err
		}
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] * 1e6 }
	st := di.WALStats()
	return RunReport{
		QPS:         float64(len(data)) / elapsed.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(len(data)),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(len(data)),
		Note: fmt.Sprintf("sync=%s, %d clients, %d fsyncs (%.0f inserts/fsync)",
			policy, clients, st.Fsyncs, safeDiv(float64(len(data)), float64(st.Fsyncs))),
	}, di, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
