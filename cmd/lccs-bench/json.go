package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"lccs"
	"lccs/internal/server"
	"lccs/internal/vec"
)

// bruteForceIDs computes the exact k-NN ids of every query by linear
// scan — the ground truth the sq8 run's recall note is measured
// against.
func bruteForceIDs(data, queries [][]float32, k int, kind lccs.MetricKind) [][]int {
	metric := vec.MetricByName(string(kind))
	truth := make([][]int, len(queries))
	type cand struct {
		id int
		d  float64
	}
	for qi, q := range queries {
		best := make([]cand, 0, k)
		for id, row := range data {
			d := metric.Distance(q, row)
			j := len(best)
			if j == k {
				if d >= best[k-1].d {
					continue
				}
				j = k - 1
			} else {
				best = append(best, cand{})
			}
			for ; j > 0 && best[j-1].d > d; j-- {
				best[j] = best[j-1]
			}
			best[j] = cand{id: id, d: d}
		}
		ids := make([]int, len(best))
		for i, c := range best {
			ids[i] = c.id
		}
		truth[qi] = ids
	}
	return truth
}

// sq8FullScanRecall isolates the quantizer from the LSH index: every
// query is scored against ALL rows through the SQ8 codes, the top
// rerank survivors are re-measured exactly, and the resulting top-k is
// compared to float32 brute force. This is the recall cost of the
// quantized scan itself — an end-to-end index recall below it is the
// LSH structure's miss rate, not quantization loss.
func sq8FullScanRecall(data, queries [][]float32, k, rerank int, kind lccs.MetricKind, truth [][]int) float64 {
	metric := vec.MetricByName(string(kind))
	st, err := vec.FromRows(data)
	if err != nil {
		panic(err)
	}
	qs := vec.QuantizeSQ8(st)
	n := st.Len()
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	scores := make([]float32, n)
	var prep vec.SQ8Query
	type cand struct {
		id int
		s  float64
	}
	var hit, total int
	for qi, q := range queries {
		qs.Prepare(metric, q, &prep)
		qs.GatherScoresInto(ids, &prep, scores)
		// Bounded insertion select of the rerank best quantized scores.
		best := make([]cand, 0, rerank)
		for id, s := range scores {
			d := float64(s)
			j := len(best)
			if j == rerank {
				if d >= best[rerank-1].s {
					continue
				}
				j = rerank - 1
			} else {
				best = append(best, cand{})
			}
			for ; j > 0 && best[j-1].s > d; j-- {
				best[j] = best[j-1]
			}
			best[j] = cand{id: id, s: d}
		}
		// Exact re-rank of the survivors, then top-k.
		for i := range best {
			best[i].s = metric.Distance(q, st.Row(best[i].id))
		}
		sort.Slice(best, func(a, b int) bool { return best[a].s < best[b].s })
		if len(best) > k {
			best = best[:k]
		}
		in := make(map[int]bool, len(best))
		for _, c := range best {
			in[c.id] = true
		}
		for _, id := range truth[qi] {
			if in[id] {
				hit++
			}
		}
		total += len(truth[qi])
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// recallAtK averages |Search ∩ truth| / |truth| over all queries.
func recallAtK(ix *lccs.Index, queries [][]float32, k int, truth [][]int) float64 {
	var hit, total int
	for qi, q := range queries {
		res, err := ix.Search(q, k)
		if err != nil {
			panic(err)
		}
		in := make(map[int]bool, len(truth[qi]))
		for _, id := range truth[qi] {
			in[id] = true
		}
		for _, nb := range res {
			if in[nb.ID] {
				hit++
			}
		}
		total += len(truth[qi])
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// Report is the machine-readable output of -json: one entry per
// experiment, so successive runs (committed as BENCH_PRn.json files)
// give the repository a performance trajectory.
type Report struct {
	N          int                  `json:"n"`
	Dim        int                  `json:"dim"`
	M          int                  `json:"m"`
	K          int                  `json:"k"`
	Metric     string               `json:"metric"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	GoVersion  string               `json:"go_version"`
	KernelImpl string               `json:"kernel_impl"`
	Runs       map[string]RunReport `json:"runs"`
	Kernels    []KernelRow          `json:"kernels,omitempty"`
}

// RunReport holds the measurements of one experiment.
type RunReport struct {
	BuildSeconds float64 `json:"build_seconds,omitempty"`
	QPS          float64 `json:"qps"`
	P50Micros    float64 `json:"p50_us"`
	P99Micros    float64 `json:"p99_us"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	// ScanBytesPerQuery and CacheHitRatio come from the server's usage
	// counters (/v1/collections/default/usage) on the serve runs:
	// vector bytes the distance kernels read per search, and the
	// result-cache hit fraction (absent when the cache is off).
	ScanBytesPerQuery float64 `json:"scan_bytes_per_query,omitempty"`
	CacheHitRatio     float64 `json:"cache_hit_ratio,omitempty"`
	Note              string  `json:"note,omitempty"`
}

// measureLoop runs fn once per query for rounds passes, single-threaded,
// and reports throughput, latency percentiles, and per-operation heap
// traffic (measured with runtime.MemStats around the timed loop, GC
// settled first).
func measureLoop(queries [][]float32, rounds int, fn func(q []float32)) RunReport {
	// Warm-up pass: steady-state pools and buffer capacities, not the
	// first-call growth, are what the numbers should describe.
	for _, q := range queries {
		fn(q)
	}
	ops := rounds * len(queries)
	lat := make([]float64, 0, ops)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			t0 := time.Now()
			fn(q)
			lat = append(lat, time.Since(t0).Seconds())
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] * 1e6 }
	return RunReport{
		QPS:         float64(ops) / elapsed.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}
}

// jsonBench runs the core, shard, and serve experiments and writes the
// combined Report to path ("-" for stdout).
func jsonBench(path string, n, nq, k, m, shards, clients, reqs int, seed uint64, kind lccs.MetricKind, quantize string, rerank int) error {
	data, queries := benchWorkload(n, nq, seed, kind)
	cfg := lccs.Config{Metric: kind, M: m, Seed: seed, Quantize: quantize, Rerank: rerank}
	rep := Report{
		N: n, Dim: len(data[0]), M: m, K: k, Metric: string(kind),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		KernelImpl: vec.KernelImpl(),
		Runs:       map[string]RunReport{},
	}
	const rounds = 5

	// core: one Index, single-threaded query loop.
	start := time.Now()
	single, err := lccs.NewIndex(data, cfg)
	if err != nil {
		return err
	}
	coreBuild := time.Since(start).Seconds()
	r := measureLoop(queries, rounds, func(q []float32) { single.Search(q, k) })
	r.BuildSeconds = coreBuild
	r.Note = "single-threaded Index.Search"
	rep.Runs["core"] = r
	addIntoRuns(&rep, "core", single, queries, rounds, k)

	// shard: parallel build, fan-out query loop.
	sx, err := lccs.NewShardedIndex(data, cfg, shards)
	if err != nil {
		return err
	}
	r = measureLoop(queries, rounds, func(q []float32) { sx.Search(q, k) })
	r.BuildSeconds = sx.BuildTime().Seconds()
	r.Note = fmt.Sprintf("ShardedIndex.Search fan-out, S=%d", sx.Shards())
	rep.Runs["shard"] = r
	addIntoRuns(&rep, "shard", sx, queries, rounds, k)

	// serve: loopback HTTP with concurrent clients, result cache off.
	sr, err := serveRun(sx, queries, k, clients, reqs, 0, 0)
	if err != nil {
		return err
	}
	rep.Runs["serve"] = sr

	// serve_traced: same load with every request span-traced, so the
	// report pins the observability overhead against the serve baseline.
	st, err := serveRun(sx, queries, k, clients, reqs, 1, 0)
	if err != nil {
		return err
	}
	if sr.QPS > 0 {
		st.Note = fmt.Sprintf("%s; traced QPS delta %+.2f%% vs serve", st.Note, (st.QPS-sr.QPS)/sr.QPS*100)
	}
	rep.Runs["serve_traced"] = st

	// serve_cached: the same repeated workload against a result cache
	// sized to hold it, so the report prices a cache hit (and the usage
	// counters' hit ratio) against the uncached serve baseline.
	scr, err := serveRun(sx, queries, k, clients, reqs, 0, len(queries))
	if err != nil {
		return err
	}
	if sr.QPS > 0 {
		scr.Note = fmt.Sprintf("%s; cached QPS %.2fx vs serve", scr.Note, scr.QPS/sr.QPS)
	}
	rep.Runs["serve_cached"] = scr

	// churn: mixed insert/delete/search, compaction cost, QPS recovery.
	cs, err := runChurn(n, nq, k, m, seed, kind)
	if err != nil {
		return err
	}
	rep.Runs["churn"] = cs.churn
	cr := cs.preCompact
	cr.Note = fmt.Sprintf("%s; %d live", cr.Note, cs.live)
	rep.Runs["churn_precompact"] = cr
	rep.Runs["churn_postcompact"] = cs.postCompact

	// filter: metadata-filtered search at three selectivities plus a
	// cursor-paginated drain, with recall against exact filtered brute
	// force noted per run.
	filterRs, err := filterRuns(n, nq, k, m, seed, kind)
	if err != nil {
		return err
	}
	for name, r := range filterRs {
		rep.Runs[name] = r
	}

	// wal: durable ingest per sync policy + crash-recovery replay.
	walRuns, _, err := walRuns(n, clients, seed, kind)
	if err != nil {
		return err
	}
	for name, r := range walRuns {
		rep.Runs[name] = r
	}

	// sq8: the quantized scan + exact re-rank path, with recall@k of
	// both the quantized and the plain index against exact brute force
	// — the pair shows whether the re-rank holds recall while the scan
	// reads a quarter of the bytes.
	if kind == lccs.Euclidean || kind == lccs.Angular {
		qcfg := cfg
		qcfg.Quantize = lccs.QuantizeSQ8
		start = time.Now()
		qix, err := lccs.NewIndex(data, qcfg)
		if err != nil {
			return err
		}
		qBuild := time.Since(start).Seconds()
		r = measureLoop(queries, rounds, func(q []float32) { qix.Search(q, k) })
		r.BuildSeconds = qBuild
		truth := bruteForceIDs(data, queries, k, kind)
		_, rr := qix.Quantization()
		r.Note = fmt.Sprintf("SQ8 scan + exact re-rank (rerank=%d): quantizer full-scan recall@%d %.4f vs exact; end-to-end index recall %.4f (plain float32 index %.4f — the gap to 1.0 is LSH miss rate, not quantization)",
			rr, k, sq8FullScanRecall(data, queries, k, rr, kind, truth),
			recallAtK(qix, queries, k, truth), recallAtK(single, queries, k, truth))
		rep.Runs["sq8"] = r
		addIntoRuns(&rep, "sq8", qix, queries, rounds, k)
	}

	// kernel: raw distance-kernel throughput table.
	rep.Kernels = kernelBench(io.Discard)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// serveRun drives the HTTP serving stack over a loopback listener, as in
// -exp serve, and reports end-to-end client-side numbers plus
// process-wide heap traffic per request (server and client combined —
// an upper bound on the serving path's allocation cost). traceSample
// sets the server's span-tracing fraction (1 = trace every request);
// cacheSize the result-cache capacity (0 = off).
func serveRun(backend lccs.Searcher, queries [][]float32, k, clients, reqs int, traceSample float64, cacheSize int) (RunReport, error) {
	srv, err := server.New(server.Config{
		Backend:     backend,
		MaxInFlight: runtime.GOMAXPROCS(0),
		MaxQueue:    clients * 4,
		Timeout:     30 * time.Second,
		TraceSample: traceSample,
		CacheSize:   cacheSize,
	})
	if err != nil {
		return RunReport{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return RunReport{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(map[string]any{"query": q, "k": k})
		if err != nil {
			return RunReport{}, err
		}
		bodies[i] = b
	}
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(body []byte) error {
		resp, err := client.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return nil
	}
	for i := 0; i < clients && i < len(bodies); i++ {
		if err := post(bodies[i]); err != nil {
			return RunReport{}, err
		}
	}

	lat := make([]float64, reqs)
	errs := make([]error, clients)
	var next int
	var mu sync.Mutex
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= reqs {
					return
				}
				t0 := time.Now()
				if err := post(bodies[i%len(bodies)]); err != nil {
					errs[c] = err
					return
				}
				lat[i] = time.Since(t0).Seconds()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			return RunReport{}, err
		}
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] * 1e6 }
	r := RunReport{
		QPS:         float64(reqs) / elapsed.Seconds(),
		P50Micros:   pct(0.50),
		P99Micros:   pct(0.99),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(reqs),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(reqs),
		Note:        fmt.Sprintf("loopback HTTP /v1/search, %d clients, trace_sample=%g, cache_size=%d (process-wide allocs incl. client)", clients, traceSample, cacheSize),
	}
	us, err := fetchUsage(client, base)
	if err != nil {
		return RunReport{}, err
	}
	if us.Searches > 0 {
		r.ScanBytesPerQuery = float64(us.BytesScanned) / float64(us.Searches)
	}
	if outcomes := us.CacheHits + us.CacheMisses; outcomes > 0 {
		r.CacheHitRatio = float64(us.CacheHits) / float64(outcomes)
	}
	return r, nil
}
