package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"lccs/internal/rng"
	"lccs/internal/vec"
)

// KernelRow is one line of the -exp kernel microbenchmark: a single
// kernel streamed over a contiguous block at one dimensionality, with
// throughput in rows scanned per second and effective scan bandwidth in
// GB/s (bytes of vector data read per second: 4·dim per row for the
// float32 kernels, dim for the SQ8 ones).
type KernelRow struct {
	Kernel     string  `json:"kernel"`
	Dim        int     `json:"dim"`
	RowsPerSec float64 `json:"rows_per_sec"`
	GBPerSec   float64 `json:"gb_per_sec"`
}

// kernelDims are the microbenchmark dimensionalities: the bench
// workload's own dim, the paper datasets' dims (Glove 100, Sift 128,
// Gist 960), and one deliberately awkward non-multiple-of-8 size.
var kernelDims = []int{16, 100, 128, 420, 960}

// kernelBench streams every distance kernel over a memory-resident
// block at each dimensionality and reports rows/s and GB/s. Two
// baselines anchor the speedups: scan_visit is the literal pre-batching
// Store.Scan loop (Metric interface call + float64 + sqrt + visit
// closure per row) measured against scan, today's Store.Scan over the
// same rows; scan_ref is a tighter scalar bound — a plain inlinable
// float32 squared-distance loop with none of that overhead — that the
// raw block kernels (sq, dot, dotnorm) are compared against.
func kernelBench(out io.Writer) []KernelRow {
	fmt.Fprintf(out, "# kernel bench: impl=%s (rows/s scanned, GB/s of vector bytes)\n", vec.KernelImpl())
	fmt.Fprintf(out, "%-10s %6s %14s %10s\n", "kernel", "dim", "rows/s", "GB/s")
	var rows []KernelRow
	for _, dim := range kernelDims {
		for _, r := range kernelBenchDim(dim) {
			fmt.Fprintf(out, "%-10s %6d %14.0f %10.2f\n", r.Kernel, r.Dim, r.RowsPerSec, r.GBPerSec)
			rows = append(rows, r)
		}
	}
	return rows
}

// kernelBenchDim measures every kernel at one dimensionality. The block
// is sized past cache (≥4 MB of float32 rows) so the numbers reflect
// streaming bandwidth, which is what candidate verification sees.
func kernelBenchDim(dim int) []KernelRow {
	nRows := (4 << 20) / (4 * dim)
	if nRows < 1024 {
		nRows = 1024
	}
	g := rng.New(uint64(dim))
	block := make([]float32, nRows*dim)
	for i := range block {
		block[i] = float32(g.NormFloat64())
	}
	q := make([]float32, dim)
	for i := range q {
		q[i] = float32(g.NormFloat64())
	}
	store, err := vec.FromBlock(dim, block)
	if err != nil {
		panic(err)
	}
	qs := vec.QuantizeSQ8(store)
	ids := make([]int32, nRows)
	for i := range ids {
		ids[i] = int32(i)
	}
	var eq, aq vec.SQ8Query
	qs.Prepare(vec.Euclidean, q, &eq)
	qs.Prepare(vec.Angular, q, &aq)
	dist := make([]float32, nRows)
	norm := make([]float32, nRows)

	f32Bytes := int64(nRows) * int64(dim) * 4
	sq8Bytes := int64(nRows) * int64(dim)
	measure := func(kernel string, bytesPerPass int64, pass func()) KernelRow {
		pass() // warm-up: page in the block, settle dispatch
		// Best of three 200ms windows: on shared 1-vCPU builders,
		// stolen cycles depress individual windows by tens of percent;
		// the fastest window is the closest estimate of the kernel's
		// actual throughput.
		var best float64
		for trial := 0; trial < 3; trial++ {
			var passes int
			var elapsed time.Duration
			for start := time.Now(); elapsed < 200*time.Millisecond; elapsed = time.Since(start) {
				pass()
				passes++
			}
			if r := float64(passes) / elapsed.Seconds(); r > best {
				best = r
			}
		}
		return KernelRow{
			Kernel:     kernel,
			Dim:        dim,
			RowsPerSec: float64(nRows) * best,
			GBPerSec:   float64(bytesPerPass) * best / 1e9,
		}
	}

	// visit accumulates into a package-level sink so the distances
	// (sqrt included) stay live and the loops cannot be optimized out.
	visit := func(id int, d float64) { kernelSink += d }

	rows := []KernelRow{
		// scan_visit replays the pre-kernel Store.Scan body: a
		// dynamically dispatched per-row distance call (float64 scalar
		// accumulation plus sqrt — today's vec.Distance is itself
		// kernel-backed, so the old arithmetic lives in scanVisitRef
		// here) fed through a visit closure. scan is today's
		// Store.Scan over the same rows — their ratio is the
		// end-to-end speedup of the Scan API itself.
		measure("scan_visit", f32Bytes, func() {
			base := 0
			for i := 0; i < nRows; i++ {
				row := block[base : base+dim : base+dim]
				visit(i, scanVisitDistance(row, q))
				base += dim
			}
		}),
		measure("scan", f32Bytes, func() {
			store.Scan(0, nRows, q, vec.Euclidean, visit)
		}),
		// dist_into is the block API that replaced the visit-closure
		// scans on the hot paths: same euclidean distances (sqrt
		// included), written straight into a caller buffer.
		measure("dist_into", f32Bytes, func() {
			store.DistancesInto(0, nRows, q, vec.Euclidean, dist)
		}),
		measure("scan_ref", f32Bytes, func() {
			for i := 0; i < nRows; i++ {
				dist[i] = scanRefSq(block[i*dim:(i+1)*dim], q)
			}
		}),
		measure("sq", f32Bytes, func() { vec.SquaredEuclideanBlock(block, q, dist) }),
		measure("dot", f32Bytes, func() { vec.DotBlock(block, q, dist) }),
		measure("dotnorm", f32Bytes, func() { vec.DotNormBlock(block, q, dist, norm) }),
		measure("sq8_sq", sq8Bytes, func() { qs.GatherScoresInto(ids, &eq, dist) }),
		measure("sq8_dot", sq8Bytes, func() { qs.GatherScoresInto(ids, &aq, dist) }),
	}
	return rows
}

// kernelSink keeps the baseline scan loops' results observable so the
// compiler cannot eliminate the distance computation being measured.
var kernelSink float64

// scanVisitRef is the pre-kernel euclidean distance: scalar float64
// accumulation and a sqrt per row, exactly the arithmetic vec.Distance
// performed before the batched kernels replaced it.
func scanVisitRef(row, q []float32) float64 {
	var s float64
	for i, v := range row {
		d := float64(v) - float64(q[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// scanVisitDistance is called through a mutable package-level variable
// so the compiler treats it as dynamic dispatch (as the old Metric
// interface call was) and cannot inline or specialize it away.
var scanVisitDistance = scanVisitRef

// scanRefSq is the plain per-row scalar squared distance — the tightest
// scalar loop the compiler can produce without batching, kept as the
// lower-bound baseline the raw block kernels are measured against.
func scanRefSq(row, q []float32) float32 {
	var s float32
	for i, v := range row {
		d := v - q[i]
		s += d * d
	}
	return s
}
