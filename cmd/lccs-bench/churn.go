package main

import (
	"fmt"
	"time"

	"lccs"
	"lccs/internal/rng"
)

// churnStats is the measured outcome of one churn run, shared by the
// human-readable -exp churn output and the machine-readable -json
// suite.
type churnStats struct {
	churn          RunReport // searches interleaved with inserts/deletes
	preCompact     RunReport // search-only, tombstones still in place
	postCompact    RunReport // search-only, after Rebuild reclaimed them
	tombstones     int       // pending tombstones before compaction
	live           int       // live vectors after the churn phase
	compactSeconds float64   // wall-clock cost of the Rebuild compaction
}

// runChurn drives a DynamicIndex through a mixed insert/delete/search
// workload — the serving pattern the delta-main architecture exists
// for — then measures what compaction costs and what it buys back:
//
//  1. churn phase: per operation one insert, one delete of a random
//     live id, and one search, crossing the background-rebuild
//     threshold several times so tombstones land in immutable shards;
//  2. pre-compaction search loop: every query pays the tombstone
//     over-fetch;
//  3. Rebuild (timed): drops dead rows, clears the tombstone set;
//  4. post-compaction search loop: the recovered QPS.
func runChurn(n, nq, k, m int, seed uint64, kind lccs.MetricKind) (churnStats, error) {
	data, queries := benchWorkload(n, nq, seed, kind)
	cfg := lccs.Config{Metric: kind, M: m, Seed: seed}
	// A threshold well under the churn volume, so several delta builds
	// (and their buffer compactions) run during the phase.
	threshold := n / 8
	if threshold < 64 {
		threshold = 64
	}
	d, err := lccs.NewDynamicIndex(data, cfg, threshold)
	if err != nil {
		return churnStats{}, err
	}

	var st churnStats
	g := rng.New(seed ^ 0xC4)
	ops := n / 2 // half the dataset turns over
	live := make([]int, len(data))
	for i := range live {
		live[i] = i
	}
	qi := 0
	churnStart := time.Now()
	for i := 0; i < ops; i++ {
		v := data[g.IntN(len(data))]
		id, err := d.Add(v)
		if err != nil {
			return churnStats{}, err
		}
		live = append(live, id)
		victim := g.IntN(len(live))
		d.Delete(live[victim])
		live[victim] = live[len(live)-1]
		live = live[:len(live)-1]
		if i%8 == 0 {
			if _, err := d.Search(queries[qi%len(queries)], k); err != nil {
				return churnStats{}, err
			}
			qi++
		}
	}
	d.WaitRebuild()
	st.churn = RunReport{
		QPS:  float64(ops) / time.Since(churnStart).Seconds(), // ops/sec through the mixed loop
		Note: fmt.Sprintf("mixed insert+delete churn, search every 8 ops, threshold=%d", threshold),
	}

	st.tombstones = d.Deleted()
	st.live = d.Len()
	st.preCompact = measureLoop(queries, 3, func(q []float32) { d.Search(q, k) })
	st.preCompact.Note = fmt.Sprintf("search with %d pending tombstones", st.tombstones)

	compactStart := time.Now()
	if err := d.Rebuild(); err != nil {
		return churnStats{}, err
	}
	st.compactSeconds = time.Since(compactStart).Seconds()
	if d.Deleted() != 0 || d.Len() != st.live {
		return churnStats{}, fmt.Errorf("compaction broke accounting: deleted=%d len=%d want 0/%d",
			d.Deleted(), d.Len(), st.live)
	}

	st.postCompact = measureLoop(queries, 3, func(q []float32) { d.Search(q, k) })
	st.postCompact.BuildSeconds = st.compactSeconds
	st.postCompact.Note = "search after Rebuild compaction"
	return st, nil
}

// churnBench is the human-readable -exp churn report.
func churnBench(n, nq, k, m int, seed uint64, kind lccs.MetricKind) error {
	fmt.Printf("# churn bench: n=%d m=%d nq=%d k=%d metric=%s\n", n, m, nq, k, kind)
	st, err := runChurn(n, nq, k, m, seed, kind)
	if err != nil {
		return err
	}
	fmt.Printf("churn ops/s          %10.0f  (insert+delete, search every 8 ops)\n", st.churn.QPS)
	fmt.Printf("live vectors         %10d  (tombstones before compaction: %d)\n", st.live, st.tombstones)
	fmt.Printf("pre-compact QPS      %10.0f  p50 %.0fµs  p99 %.0fµs\n",
		st.preCompact.QPS, st.preCompact.P50Micros, st.preCompact.P99Micros)
	fmt.Printf("compaction           %10.3fs  (Rebuild: drop dead rows, clear tombstones)\n", st.compactSeconds)
	fmt.Printf("post-compact QPS     %10.0f  p50 %.0fµs  p99 %.0fµs  (recovery %.2fx)\n",
		st.postCompact.QPS, st.postCompact.P50Micros, st.postCompact.P99Micros,
		st.postCompact.QPS/st.preCompact.QPS)
	return nil
}
