// Command lccs-bench regenerates the paper's tables and figures on the
// synthetic dataset analogues, and benchmarks the sharded index and
// serving subsystems.
//
// Usage:
//
//	lccs-bench -exp fig4 [-n 10000] [-nq 50] [-k 10] [-datasets sift,glove] [-seed 1] [-quick]
//	lccs-bench -exp all      # every table and figure, in paper order
//	lccs-bench -exp shard [-n 100000] [-shards 0] [-m 32] [-metric euclidean]
//	                         # sharded vs single: build speedup + per-shard QPS
//	lccs-bench -exp serve [-n 100000] [-clients 8] [-reqs 2000] [-metric euclidean]
//	                         # drive the HTTP server over loopback: QPS + p50/p99,
//	                         # plus scan bytes/query and the result-cache hit
//	                         # ratio read back from the usage counters
//	lccs-bench -exp churn [-n 100000] [-m 32] [-metric euclidean]
//	                         # mixed insert/delete/search on a DynamicIndex:
//	                         # churn rate, compaction cost, QPS recovery
//	lccs-bench -exp wal [-n 100000] [-clients 8]
//	                         # durable ingest through the write-ahead log:
//	                         # throughput + ack p50/p99 per sync policy
//	                         # (always/interval/none), recovery-replay time
//	lccs-bench -exp filter [-n 10000] [-k 10] [-metric euclidean]
//	                         # metadata-filtered search: QPS + recall at
//	                         # 1%/10%/50% predicate selectivity, plus a
//	                         # cursor-paginated drain
//	lccs-bench -exp kernel   # distance-kernel microbenchmark: rows/s and
//	                         # GB/s per kernel per dimensionality, against
//	                         # the pre-batching per-row scalar baseline
//	lccs-bench -json report.json [-n 100000] [-shards 4]
//	                         # machine-readable core/shard/serve/churn/wal suite:
//	                         # build time, QPS, p50/p99, B/op, allocs/op
//	                         # (perf-trajectory files)
//
// Each paper experiment prints rows in the same structure as the
// corresponding artifact: Pareto-frontier (recall, query time) points for
// the curve figures, per-size trade-off rows for Figures 6/7, per-k rows
// for Figure 8, per-m and per-#probes frontiers for Figures 9/10. The
// shard experiment reports single vs parallel sharded build time, the
// build speedup, per-shard query throughput, and fan-out query
// throughput. The serve experiment starts the internal/server HTTP stack
// on a loopback listener, fires concurrent clients at /v1/search and one
// batch at /v1/search/batch, and reports end-to-end QPS with tail
// latency. -metric accepts all four facade metrics (euclidean, angular,
// hamming, jaccard).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lccs"
	"lccs/internal/experiments"
	"lccs/internal/rng"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id: "+strings.Join(experiments.Names(), ", ")+", 'all', 'shard', 'serve', 'churn', 'wal', 'filter', or 'kernel'")
		n        = flag.Int("n", 10000, "data points per dataset")
		nq       = flag.Int("nq", 50, "queries per dataset")
		k        = flag.Int("k", 10, "neighbors per query")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all five)")
		methods  = flag.String("methods", "", "comma-separated method subset, e.g. 'LCCS-LSH,E2LSH' (default: all)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "shrink parameter grids (smoke test)")
		shards   = flag.Int("shards", 0, "shard count for -exp shard/serve (0 = GOMAXPROCS)")
		m        = flag.Int("m", 32, "hash-string length for -exp shard/serve")
		metric   = flag.String("metric", "euclidean", "metric for -exp shard/serve: euclidean | angular | hamming | jaccard")
		clients  = flag.Int("clients", 8, "concurrent clients for -exp serve")
		reqs     = flag.Int("reqs", 2000, "total requests for -exp serve")
		quantize = flag.String("quantize", "", "scan-time vector compression for -exp shard/serve and -json: sq8 (euclidean/angular only)")
		rerank   = flag.Int("rerank", 0, "quantized-scan survivors re-ranked exactly per query (0 = default)")
		jsonOut  = flag.String("json", "", "run the core/shard/serve suite and write a machine-readable report to this path ('-' = stdout)")
	)
	flag.Parse()
	if *jsonOut != "" {
		kind, err := lccs.ParseMetric(*metric)
		if err == nil {
			err = jsonBench(*jsonOut, *n, *nq, *k, *m, *shards, *clients, *reqs, *seed, kind, *quantize, *rerank)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lccs-bench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *exp == "kernel" {
		kernelBench(os.Stdout)
		return
	}
	if *exp == "shard" || *exp == "serve" || *exp == "churn" || *exp == "wal" || *exp == "filter" {
		kind, err := lccs.ParseMetric(*metric)
		if err == nil {
			switch *exp {
			case "shard":
				err = shardBench(*n, *nq, *k, *m, *shards, *seed, kind, *quantize, *rerank)
			case "serve":
				err = serveBench(*n, *nq, *k, *m, *shards, *clients, *reqs, *seed, kind, *quantize, *rerank)
			case "churn":
				err = churnBench(*n, *nq, *k, *m, *seed, kind)
			case "wal":
				err = walBench(*n, *clients, *seed, kind)
			case "filter":
				err = filterBench(*n, *nq, *k, *m, *seed, kind)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lccs-bench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		return
	}
	opt := experiments.Options{
		N: *n, NQ: *nq, K: *k, Seed: *seed, Quick: *quick,
		Out: os.Stdout,
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	if *methods != "" {
		opt.Methods = strings.Split(*methods, ",")
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.Run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "lccs-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("# %s done in %.1fs\n\n", name, time.Since(start).Seconds())
	}
}

// benchWorkload generates the clustered benchmark dataset plus queries
// for the given metric: Gaussian clusters for the geometric metrics,
// random binary vectors (with near-duplicate queries) for Hamming and
// Jaccard.
func benchWorkload(n, nq int, seed uint64, kind lccs.MetricKind) (data, queries [][]float32) {
	const d = 16
	const dBits = 64
	g := rng.New(seed)
	if kind == lccs.Hamming || kind == lccs.Jaccard {
		data = make([][]float32, n)
		for i := range data {
			v := make([]float32, dBits)
			for j := range v {
				v[j] = float32(g.IntN(2))
			}
			data[i] = v
		}
		queries = make([][]float32, nq)
		for i := range queries {
			q := append([]float32(nil), data[g.IntN(n)]...)
			for _, j := range g.Perm(dBits)[:3] {
				q[j] = 1 - q[j]
			}
			queries[i] = q
		}
		return data, queries
	}
	centers := make([][]float32, 64)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data = make([][]float32, n)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64())
		}
		data[i] = v
	}
	queries = make([][]float32, nq)
	for i := range queries {
		queries[i] = g.GaussianVector(d)
		base := data[g.IntN(n)]
		for j := range queries[i] {
			queries[i][j] = base[j] + queries[i][j]*0.3
		}
	}
	return data, queries
}

// shardBench builds the same clustered workload as a single Index and as
// a ShardedIndex and reports build times, the build speedup, per-shard
// query throughput, and overall fan-out throughput.
func shardBench(n, nq, k, m, shards int, seed uint64, kind lccs.MetricKind, quantize string, rerank int) error {
	data, queries := benchWorkload(n, nq, seed, kind)
	cfg := lccs.Config{Metric: kind, M: m, Seed: seed, Quantize: quantize, Rerank: rerank}

	fmt.Printf("# shard bench: n=%d d=%d m=%d nq=%d k=%d metric=%s quantize=%q\n", n, len(data[0]), m, nq, k, kind, quantize)
	start := time.Now()
	single, err := lccs.NewIndex(data, cfg)
	if err != nil {
		return err
	}
	singleBuild := time.Since(start)
	fmt.Printf("single build        %10.3fs  (%.1f MB)\n", singleBuild.Seconds(), float64(single.Bytes())/1e6)

	sx, err := lccs.NewShardedIndex(data, cfg, shards)
	if err != nil {
		return err
	}
	fmt.Printf("sharded build (S=%d) %10.3fs  (%.1f MB)  speedup %.2fx\n",
		sx.Shards(), sx.BuildTime().Seconds(), float64(sx.Bytes())/1e6,
		singleBuild.Seconds()/sx.BuildTime().Seconds())

	qps := func(f func(q []float32)) float64 {
		start := time.Now()
		for _, q := range queries {
			f(q)
		}
		return float64(nq) / time.Since(start).Seconds()
	}
	fmt.Printf("single QPS          %10.0f\n", qps(func(q []float32) { single.Search(q, k) }))
	for s := 0; s < sx.Shards(); s++ {
		shard, off := sx.Shard(s)
		fmt.Printf("shard %2d QPS        %10.0f  (ids %d..%d)\n",
			s, qps(func(q []float32) { shard.Search(q, k) }), off, off+shard.Len()-1)
	}
	fmt.Printf("fan-out QPS         %10.0f\n", qps(func(q []float32) { sx.Search(q, k) }))
	start = time.Now()
	if _, err := sx.SearchBatch(queries, k); err != nil {
		return err
	}
	fmt.Printf("batch fan-out QPS   %10.0f\n", float64(nq)/time.Since(start).Seconds())
	return nil
}
