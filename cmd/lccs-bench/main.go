// Command lccs-bench regenerates the paper's tables and figures on the
// synthetic dataset analogues.
//
// Usage:
//
//	lccs-bench -exp fig4 [-n 10000] [-nq 50] [-k 10] [-datasets sift,glove] [-seed 1] [-quick]
//	lccs-bench -exp all      # every table and figure, in paper order
//
// Each experiment prints rows in the same structure as the corresponding
// paper artifact: Pareto-frontier (recall, query time) points for the
// curve figures, per-size trade-off rows for Figures 6/7, per-k rows for
// Figure 8, per-m and per-#probes frontiers for Figures 9/10.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lccs/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id: "+strings.Join(experiments.Names(), ", ")+", or 'all'")
		n        = flag.Int("n", 10000, "data points per dataset")
		nq       = flag.Int("nq", 50, "queries per dataset")
		k        = flag.Int("k", 10, "neighbors per query")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all five)")
		methods  = flag.String("methods", "", "comma-separated method subset, e.g. 'LCCS-LSH,E2LSH' (default: all)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "shrink parameter grids (smoke test)")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opt := experiments.Options{
		N: *n, NQ: *nq, K: *k, Seed: *seed, Quick: *quick,
		Out: os.Stdout,
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	if *methods != "" {
		opt.Methods = strings.Split(*methods, ",")
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.Run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "lccs-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("# %s done in %.1fs\n\n", name, time.Since(start).Seconds())
	}
}
