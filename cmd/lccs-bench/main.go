// Command lccs-bench regenerates the paper's tables and figures on the
// synthetic dataset analogues, and benchmarks the sharded index
// subsystem.
//
// Usage:
//
//	lccs-bench -exp fig4 [-n 10000] [-nq 50] [-k 10] [-datasets sift,glove] [-seed 1] [-quick]
//	lccs-bench -exp all      # every table and figure, in paper order
//	lccs-bench -exp shard [-n 100000] [-shards 0] [-m 32]
//	                         # sharded vs single: build speedup + per-shard QPS
//
// Each paper experiment prints rows in the same structure as the
// corresponding artifact: Pareto-frontier (recall, query time) points for
// the curve figures, per-size trade-off rows for Figures 6/7, per-k rows
// for Figure 8, per-m and per-#probes frontiers for Figures 9/10. The
// shard experiment reports single vs parallel sharded build time, the
// build speedup, per-shard query throughput, and fan-out query
// throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lccs"
	"lccs/internal/experiments"
	"lccs/internal/rng"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id: "+strings.Join(experiments.Names(), ", ")+", 'all', or 'shard'")
		n        = flag.Int("n", 10000, "data points per dataset")
		nq       = flag.Int("nq", 50, "queries per dataset")
		k        = flag.Int("k", 10, "neighbors per query")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: all five)")
		methods  = flag.String("methods", "", "comma-separated method subset, e.g. 'LCCS-LSH,E2LSH' (default: all)")
		seed     = flag.Uint64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "shrink parameter grids (smoke test)")
		shards   = flag.Int("shards", 0, "shard count for -exp shard (0 = GOMAXPROCS)")
		m        = flag.Int("m", 32, "hash-string length for -exp shard")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *exp == "shard" {
		if err := shardBench(*n, *nq, *k, *m, *shards, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lccs-bench: shard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	opt := experiments.Options{
		N: *n, NQ: *nq, K: *k, Seed: *seed, Quick: *quick,
		Out: os.Stdout,
	}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	if *methods != "" {
		opt.Methods = strings.Split(*methods, ",")
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.Run(name, opt); err != nil {
			fmt.Fprintf(os.Stderr, "lccs-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("# %s done in %.1fs\n\n", name, time.Since(start).Seconds())
	}
}

// shardBench builds the same clustered workload as a single Index and as
// a ShardedIndex and reports build times, the build speedup, per-shard
// query throughput, and overall fan-out throughput.
func shardBench(n, nq, k, m, shards int, seed uint64) error {
	const d = 16
	g := rng.New(seed)
	centers := make([][]float32, 64)
	for i := range centers {
		centers[i] = g.UniformVector(d, -10, 10)
	}
	data := make([][]float32, n)
	for i := range data {
		c := centers[i%len(centers)]
		v := make([]float32, d)
		for j := range v {
			v[j] = c[j] + float32(g.NormFloat64())
		}
		data[i] = v
	}
	queries := make([][]float32, nq)
	for i := range queries {
		queries[i] = g.GaussianVector(d)
		base := data[g.IntN(n)]
		for j := range queries[i] {
			queries[i][j] = base[j] + queries[i][j]*0.3
		}
	}
	cfg := lccs.Config{Metric: lccs.Euclidean, M: m, Seed: seed}

	fmt.Printf("# shard bench: n=%d d=%d m=%d nq=%d k=%d\n", n, d, m, nq, k)
	start := time.Now()
	single, err := lccs.NewIndex(data, cfg)
	if err != nil {
		return err
	}
	singleBuild := time.Since(start)
	fmt.Printf("single build        %10.3fs  (%.1f MB)\n", singleBuild.Seconds(), float64(single.Bytes())/1e6)

	sx, err := lccs.NewShardedIndex(data, cfg, shards)
	if err != nil {
		return err
	}
	fmt.Printf("sharded build (S=%d) %10.3fs  (%.1f MB)  speedup %.2fx\n",
		sx.Shards(), sx.BuildTime().Seconds(), float64(sx.Bytes())/1e6,
		singleBuild.Seconds()/sx.BuildTime().Seconds())

	qps := func(f func(q []float32)) float64 {
		start := time.Now()
		for _, q := range queries {
			f(q)
		}
		return float64(nq) / time.Since(start).Seconds()
	}
	fmt.Printf("single QPS          %10.0f\n", qps(func(q []float32) { single.Search(q, k) }))
	for s := 0; s < sx.Shards(); s++ {
		shard, off := sx.Shard(s)
		fmt.Printf("shard %2d QPS        %10.0f  (ids %d..%d)\n",
			s, qps(func(q []float32) { shard.Search(q, k) }), off, off+shard.Len()-1)
	}
	fmt.Printf("fan-out QPS         %10.0f\n", qps(func(q []float32) { sx.Search(q, k) }))
	fmt.Printf("batch fan-out QPS   %10.0f\n", func() float64 {
		start := time.Now()
		sx.SearchBatch(queries, k)
		return float64(nq) / time.Since(start).Seconds()
	}())
	return nil
}
