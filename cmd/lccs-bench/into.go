package main

import "lccs"

// addIntoRuns measures the zero-allocation SearchInto path alongside the
// allocating Search API, so the JSON report shows both the per-call and
// the pooled steady-state cost.
func addIntoRuns(rep *Report, name string, ix lccs.Searcher, queries [][]float32, rounds, k int) {
	var dst []lccs.Neighbor
	r := measureLoop(queries, rounds, func(q []float32) {
		var err error
		dst, err = ix.SearchInto(q, k, dst)
		if err != nil {
			panic(err)
		}
	})
	r.Note = "pooled zero-allocation SearchInto with a reused result row"
	rep.Runs[name+"_into"] = r
}
