package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"lccs"
	"lccs/internal/engine"
	"lccs/internal/server"
)

// fetchUsage reads the default collection's cumulative usage counters
// from a running server — the bench's source for bytes-scanned/query
// and the cache hit ratio.
func fetchUsage(client *http.Client, base string) (engine.UsageSnapshot, error) {
	resp, err := client.Get(base + "/v1/collections/default/usage")
	if err != nil {
		return engine.UsageSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.UsageSnapshot{}, fmt.Errorf("usage: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Cumulative engine.UsageSnapshot `json:"cumulative"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return engine.UsageSnapshot{}, err
	}
	return out.Cumulative, nil
}

// serveBench stands up the internal/server HTTP stack on a loopback
// listener over a freshly built ShardedIndex, drives it with concurrent
// clients, and reports end-to-end throughput and tail latency — the
// serving overhead on top of raw index QPS (compare with -exp shard).
func serveBench(n, nq, k, m, shards, clients, reqs int, seed uint64, kind lccs.MetricKind, quantize string, rerank int) error {
	if clients < 1 {
		clients = 1
	}
	if reqs < 1 {
		return fmt.Errorf("-reqs must be positive, got %d", reqs)
	}
	data, queries := benchWorkload(n, nq, seed, kind)
	sx, err := lccs.NewShardedIndex(data, lccs.Config{Metric: kind, M: m, Seed: seed, Quantize: quantize, Rerank: rerank}, shards)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Backend:     sx,
		MaxInFlight: runtime.GOMAXPROCS(0),
		MaxQueue:    clients * 4,
		Timeout:     30 * time.Second,
		CacheSize:   0, // measure the index, not the cache
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	fmt.Printf("# serve bench: n=%d d=%d m=%d S=%d metric=%s clients=%d reqs=%d k=%d\n",
		n, len(data[0]), m, sx.Shards(), kind, clients, reqs, k)

	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(map[string]any{"query": q, "k": k})
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, body []byte) error {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
		}
		return nil
	}

	// Warm up connections and code paths.
	for i := 0; i < clients && i < len(bodies); i++ {
		if err := post("/v1/search", bodies[i]); err != nil {
			return err
		}
	}

	// Concurrent single-query load: reqs requests spread over clients.
	latencies := make([]float64, reqs)
	errs := make([]error, clients)
	var next int
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= reqs {
					return
				}
				t0 := time.Now()
				if err := post("/v1/search", bodies[i%len(bodies)]); err != nil {
					errs[c] = err
					return
				}
				latencies[i] = time.Since(t0).Seconds()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 { return latencies[int(p*float64(len(latencies)-1))] * 1000 }
	fmt.Printf("loopback QPS        %10.0f\n", float64(reqs)/elapsed.Seconds())
	fmt.Printf("latency p50         %10.3fms\n", pct(0.50))
	fmt.Printf("latency p99         %10.3fms\n", pct(0.99))
	fmt.Printf("latency max         %10.3fms\n", latencies[len(latencies)-1]*1000)

	// One whole-workload batch request for comparison.
	batchBody, err := json.Marshal(map[string]any{"queries": queries, "k": k})
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := post("/v1/search/batch", batchBody); err != nil {
		return err
	}
	fmt.Printf("batch QPS           %10.0f  (%d queries in one request)\n",
		float64(len(queries))/time.Since(t0).Seconds(), len(queries))

	// What the load cost, from the server's own usage counters.
	us, err := fetchUsage(client, base)
	if err != nil {
		return err
	}
	if us.Searches > 0 {
		fmt.Printf("scan bytes/query    %10.0f  (usage: %d searches, %.1f MB scanned)\n",
			float64(us.BytesScanned)/float64(us.Searches), us.Searches, float64(us.BytesScanned)/1e6)
		fmt.Printf("cost units/query    %10.0f\n", float64(us.CostUnits)/float64(us.Searches))
	}

	// Cached phase: the same repeated workload against a second server
	// whose result cache holds every distinct query, pricing a cache hit
	// and exercising the hit-ratio counters.
	csrv, err := server.New(server.Config{
		Backend:     sx,
		MaxInFlight: runtime.GOMAXPROCS(0),
		MaxQueue:    clients * 4,
		Timeout:     30 * time.Second,
		CacheSize:   len(bodies),
	})
	if err != nil {
		return err
	}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	cHTTP := &http.Server{Handler: csrv.Handler()}
	go cHTTP.Serve(cln)
	defer cHTTP.Close()
	cbase := "http://" + cln.Addr().String()
	t0 = time.Now()
	for i := 0; i < reqs; i++ {
		resp, err := client.Post(cbase+"/v1/search", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cached /v1/search: HTTP %d", resp.StatusCode)
		}
	}
	cachedQPS := float64(reqs) / time.Since(t0).Seconds()
	cus, err := fetchUsage(client, cbase)
	if err != nil {
		return err
	}
	if outcomes := cus.CacheHits + cus.CacheMisses; outcomes > 0 {
		fmt.Printf("cached QPS          %10.0f  (cache=%d entries, hit ratio %.3f, 1 client)\n",
			cachedQPS, len(bodies), float64(cus.CacheHits)/float64(outcomes))
	}
	return nil
}
