package main

import (
	"fmt"
	"time"

	"lccs"
	"lccs/internal/vec"
)

// The filter experiment measures metadata-filtered search on a
// DynamicIndex at three predicate selectivities (1%, 10%, 50% of rows
// matching), plus a cursor-paginated drain. Each selectivity reports
// QPS and tail latency of SearchFilter under the default candidate
// budget λ, recall@k against an exact filtered brute-force scan at
// that λ, and — as an exactness check of the filtered verification
// path — recall at λ = n, which must be 1.0.

// filterCase is one selectivity point: the wire filter, the matching
// predicate the exact ground truth is restricted to, and the nominal
// match percentage.
type filterCase struct {
	name   string
	label  string
	filter *lccs.Filter
	match  func(id int) bool
	pct    float64
}

// filterBenchAttrs assigns the synthetic metadata of row id: a string
// tier marking 1% of rows "hot", an int decile bucketing 10%, and an
// int bucket in [0,100) for range predicates of any width.
func filterBenchAttrs(id int) lccs.Attrs {
	tier := "cold"
	if id%100 == 0 {
		tier = "hot"
	}
	return lccs.Attrs{
		"tier":   lccs.StrAttr(tier),
		"decile": lccs.IntAttr(int64(id % 10)),
		"bucket": lccs.IntAttr(int64(id % 100)),
	}
}

// filterBenchCases covers the three predicate forms at the three
// selectivities: string equality (1%), int equality (10%), and an int
// range (50%).
func filterBenchCases() []filterCase {
	lo, hi := int64(0), int64(49)
	return []filterCase{
		{
			name:   "filter_sel1",
			label:  `tier="hot"`,
			filter: &lccs.Filter{Terms: []lccs.FilterTerm{lccs.EqStr("tier", "hot")}},
			match:  func(id int) bool { return id%100 == 0 },
			pct:    1,
		},
		{
			name:   "filter_sel10",
			label:  "decile=0",
			filter: &lccs.Filter{Terms: []lccs.FilterTerm{lccs.EqInt("decile", 0)}},
			match:  func(id int) bool { return id%10 == 0 },
			pct:    10,
		},
		{
			name:   "filter_sel50",
			label:  "bucket∈[0,49]",
			filter: &lccs.Filter{Terms: []lccs.FilterTerm{lccs.Range("bucket", &lo, &hi)}},
			match:  func(id int) bool { return id%100 < 50 },
			pct:    50,
		},
	}
}

// bruteForceFilteredIDs is bruteForceIDs restricted to rows with
// keep(id): the exact ranked answer a filtered search is measured
// against.
func bruteForceFilteredIDs(data, queries [][]float32, k int, kind lccs.MetricKind, keep func(int) bool) [][]int {
	metric := vec.MetricByName(string(kind))
	truth := make([][]int, len(queries))
	type cand struct {
		id int
		d  float64
	}
	for qi, q := range queries {
		best := make([]cand, 0, k)
		for id, row := range data {
			if !keep(id) {
				continue
			}
			d := metric.Distance(q, row)
			j := len(best)
			if j == k {
				if d >= best[k-1].d {
					continue
				}
				j = k - 1
			} else {
				best = append(best, cand{})
			}
			for ; j > 0 && best[j-1].d > d; j-- {
				best[j] = best[j-1]
			}
			best[j] = cand{id: id, d: d}
		}
		ids := make([]int, len(best))
		for i, c := range best {
			ids[i] = c.id
		}
		truth[qi] = ids
	}
	return truth
}

// filteredRecall averages |got ∩ truth| / |truth| over all queries for
// the given search function.
func filteredRecall(queries [][]float32, truth [][]int, search func(q []float32) []lccs.Neighbor) float64 {
	var hit, total int
	for qi, q := range queries {
		in := make(map[int]bool, len(truth[qi]))
		for _, id := range truth[qi] {
			in[id] = true
		}
		for _, nb := range search(q) {
			if in[nb.ID] {
				hit++
			}
		}
		total += len(truth[qi])
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// filterRuns builds an attributed DynamicIndex over the standard bench
// workload and returns one RunReport per selectivity plus the
// paginated-drain run, keyed by run name.
func filterRuns(n, nq, k, m int, seed uint64, kind lccs.MetricKind) (map[string]RunReport, error) {
	data, queries := benchWorkload(n, nq, seed, kind)
	cfg := lccs.Config{Metric: kind, M: m, Seed: seed}
	start := time.Now()
	dyn, err := lccs.NewDynamicIndex(nil, cfg, n+1)
	if err != nil {
		return nil, err
	}
	for i, v := range data {
		if _, err := dyn.AddWithAttrs(v, filterBenchAttrs(i)); err != nil {
			return nil, err
		}
	}
	if err := dyn.Rebuild(); err != nil {
		return nil, err
	}
	build := time.Since(start).Seconds()

	const rounds = 5
	runs := make(map[string]RunReport, 4)
	for _, fc := range filterBenchCases() {
		truth := bruteForceFilteredIDs(data, queries, k, kind, fc.match)
		r := measureLoop(queries, rounds, func(q []float32) {
			if _, err := dyn.SearchFilter(q, k, fc.filter); err != nil {
				panic(err)
			}
		})
		r.BuildSeconds = build
		recall := filteredRecall(queries, truth, func(q []float32) []lccs.Neighbor {
			res, err := dyn.SearchFilter(q, k, fc.filter)
			if err != nil {
				panic(err)
			}
			return res
		})
		exact := filteredRecall(queries, truth, func(q []float32) []lccs.Neighbor {
			res, err := dyn.SearchFilterBudgetInto(q, k, n, fc.filter, nil)
			if err != nil {
				panic(err)
			}
			return res
		})
		r.Note = fmt.Sprintf("filtered search %s (%g%% selectivity): recall@%d %.4f at default λ, %.4f at λ=n",
			fc.label, fc.pct, k, recall, exact)
		runs[fc.name] = r
	}

	// Paginated drain through the 10%-selectivity filter: each op
	// resumes the cursor across a fixed number of k-sized pages, so the
	// run prices token decode + merge-resume rather than one giant page.
	const pages = 8
	f10 := filterBenchCases()[1].filter
	r := measureLoop(queries, rounds, func(q []float32) {
		cursor := ""
		for p := 0; p < pages; p++ {
			page, next, err := dyn.SearchCursor(q, k, 0, f10, cursor)
			if err != nil {
				panic(err)
			}
			if next == "" || len(page) == 0 {
				break
			}
			cursor = next
		}
	})
	r.BuildSeconds = build
	r.Note = fmt.Sprintf("cursor drain, %d pages × limit=%d per op, filter decile=0 (10%% selectivity)", pages, k)
	runs["filter_paginate"] = r
	return runs, nil
}

// filterBench prints the filter experiment as a table, for
// -exp filter.
func filterBench(n, nq, k, m int, seed uint64, kind lccs.MetricKind) error {
	fmt.Printf("# filter bench: n=%d m=%d nq=%d k=%d metric=%s\n", n, m, nq, k, kind)
	runs, err := filterRuns(n, nq, k, m, seed, kind)
	if err != nil {
		return err
	}
	for _, name := range []string{"filter_sel1", "filter_sel10", "filter_sel50", "filter_paginate"} {
		r := runs[name]
		fmt.Printf("%-16s QPS %10.0f  p50 %8.1fµs  p99 %8.1fµs  %s\n",
			name, r.QPS, r.P50Micros, r.P99Micros, r.Note)
	}
	return nil
}
