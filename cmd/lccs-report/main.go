// Command lccs-report summarizes lccs-bench output files: for every
// (dataset, method) pair it reports the fastest configuration that reaches
// a target recall level — the reading the paper applies to Figures 4–7.
//
// Usage:
//
//	lccs-report -recall 50 results/fig4.txt [more files...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"lccs/internal/eval"
)

func main() {
	recall := flag.Float64("recall", 50, "target recall level in percent")
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	type key struct{ ds, method string }
	best := map[key]eval.Result{}
	order := []key{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lccs-report:", err)
			os.Exit(1)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			ds, r, ok := eval.ParseRow(sc.Text())
			if !ok || 100*r.Recall+1e-9 < *recall {
				continue
			}
			k := key{ds, r.Method}
			cur, seen := best[k]
			if !seen {
				order = append(order, k)
			}
			if !seen || r.QueryTimeMS < cur.QueryTimeMS {
				best[k] = r
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "lccs-report:", err)
			os.Exit(1)
		}
		f.Close()
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].ds != order[b].ds {
			return order[a].ds < order[b].ds
		}
		return order[a].method < order[b].method
	})
	fmt.Printf("fastest configuration at ≥%.0f%% recall:\n", *recall)
	for _, k := range order {
		r := best[k]
		fmt.Printf("%-14s %-16s %9.3f ms @ %5.1f%%  (%s, %.1f MB)\n",
			k.ds, k.method, r.QueryTimeMS, 100*r.Recall, r.Config, float64(r.IndexBytes)/(1<<20))
	}
}
